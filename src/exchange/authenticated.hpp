// E_auth(n, t, key): the authenticated fault-report exchange — E_report's
// evidence with a per-destination HMAC-style signature (cf. Spiegelman's
// optimal authenticated BA, PAPERS.md).
//
// This is the library's first NON-broadcast exchange: µ depends on the
// destination, because each report is signed over (sender, dest, time,
// payload) with the sender's key, derived from a shared master key via
// audit/digest.hpp's KeyedDigest64 — no crypto dependency. The engine
// therefore takes its per-destination-µ path (stepper generic rounds and
// the net/ wire staging), which E_auth exists to exercise: under pure
// omission failures authentication buys no rounds over E_report — nobody
// lies, so the signatures all verify and P_auth decides exactly when P_es
// does — it just prices what the signature costs (64 bits per message and
// n distinct µ evaluations per sender per round). δ verifies every inbox
// signature and treats a mismatch as ⊥, converting forgery into omission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "audit/digest.hpp"
#include "core/agent_set.hpp"
#include "core/types.hpp"
#include "exchange/report.hpp"

namespace eba {

/// A signed report. The sender id is not carried: the inbox slot (and the
/// wire route) names the sender, and the signature binds it, so a report
/// replayed into another slot fails verification.
struct AuthMsg {
  ReportMsg payload;
  std::uint64_t sig = 0;

  friend bool operator==(const AuthMsg&, const AuthMsg&) = default;
};

/// ReportState plus the agent's own id — δ and µ need it to verify and
/// produce signatures bound to (sender, dest).
struct AuthState {
  int time = 0;
  Value init = Value::zero;
  std::optional<Value> decided;
  std::optional<Value> jd;
  AgentSet zeros;
  AgentSet faults;
  bool budget_common = false;
  int ones = 0;  ///< see ReportState::ones
  AgentId self = 0;

  friend bool operator==(const AuthState&, const AuthState&) = default;
};

[[nodiscard]] std::size_t hash_value(const AuthState& s);

class AuthExchange {
 public:
  using State = AuthState;
  using Message = AuthMsg;
  // No kBroadcast marker: µ is destination-dependent, so the engine runs
  // its per-destination µ loop (stepper.hpp) and per-destination wire
  // staging (net/workload.hpp).

  AuthExchange(int n, int t, std::uint64_t master_key)
      : n_(n), t_(t), master_key_(master_key) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
    EBA_REQUIRE(t >= 0 && n - t >= 2, "E_auth requires 0 <= t <= n-2");
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }
  [[nodiscard]] std::uint64_t master_key() const { return master_key_; }

  /// Agent i's signing key, derived from the master key. Every agent holds
  /// the master key (shared-secret authentication, not public-key).
  [[nodiscard]] std::uint64_t agent_key(AgentId i) const {
    KeyedDigest64 d(master_key_);
    d.u64(0x656261206b657900ull);  // "eba key\0"
    d.u32(static_cast<std::uint32_t>(i));
    return d.value();
  }

  /// Signature over (sender, dest, time, payload) under the sender's key.
  [[nodiscard]] std::uint64_t sign(AgentId sender, AgentId dest, int time,
                                   const ReportMsg& m) const {
    KeyedDigest64 d(agent_key(sender));
    d.u32(static_cast<std::uint32_t>(sender));
    d.u32(static_cast<std::uint32_t>(dest));
    d.u32(static_cast<std::uint32_t>(time));
    auto tag = [&](const std::optional<Value>& v) {
      d.u8(v ? (*v == Value::zero ? 1 : 2) : 0);
    };
    tag(m.fresh_decide);
    tag(m.decided_ever);
    d.word(m.zeros);
    d.word(m.faults);
    return d.value();
  }

  [[nodiscard]] State initial_state(AgentId i, Value init) const {
    return State{.time = 0,
                 .init = init,
                 .decided = {},
                 .jd = {},
                 .zeros = {},
                 .faults = {},
                 .budget_common = false,
                 .ones = 0,
                 .self = i};
  }

  /// Never ⊥, like E_report — but signed per destination.
  [[nodiscard]] std::optional<Message> message(const State& s, const Action& a,
                                               AgentId dest) const {
    Message m;
    if (a.is_decide()) m.payload.fresh_decide = a.value();
    m.payload.decided_ever =
        a.is_decide() ? std::optional<Value>(a.value()) : s.decided;
    m.payload.zeros = s.zeros;
    m.payload.faults = s.faults;
    m.sig = sign(s.self, dest, s.time, m.payload);
    return m;
  }

  /// E_report's payload plus the 64-bit signature.
  [[nodiscard]] std::size_t message_bits(const Message& /*m*/) const {
    return 2 * static_cast<std::size_t>(n_) + 4 + 64;
  }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

 private:
  int n_;
  int t_;
  std::uint64_t master_key_;
};

}  // namespace eba

template <>
struct std::hash<eba::AuthState> {
  std::size_t operator()(const eba::AuthState& s) const noexcept {
    return eba::hash_value(s);
  }
};
