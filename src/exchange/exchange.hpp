// The information-exchange protocol concept (paper §3).
//
// An exchange protocol E_i = ⟨L_i, I_i, A_i, M_i, µ_i, δ_i⟩ is modelled as a
// value type X with:
//   X::State                      — local states L_i (must expose the EBA
//                                   fields time/init/decided, paper §5)
//   X::Message                    — the message alphabet M_i
//   X::State initial_state(i, v)  — the initial state I_i for preference v
//   std::optional<Message> message(state, action, dest)
//                                 — µ_i; nullopt is ⊥ (no message)
//   std::size_t message_bits(msg) — size accounting for Prop 8.1
//   void update(state, action, inbox)
//                                 — δ_i; inbox[j] is the message received
//                                   from agent j this round (nullopt = ⊥)
//
// All exchanges in this library satisfy the EBA-context constraint on µ:
// the message sent when performing decide(v) is distinguishable from all
// other messages, so receivers can maintain jd ("just decided").
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <span>

#include "core/types.hpp"

namespace eba {

template <class X>
concept ExchangeProtocol = requires(const X x, typename X::State s,
                                    typename X::State& sref, Action a,
                                    AgentId i,
                                    std::span<const std::optional<typename X::Message>> inbox) {
  { x.initial_state(i, Value::zero) } -> std::same_as<typename X::State>;
  { x.message(s, a, i) } -> std::same_as<std::optional<typename X::Message>>;
  { x.message_bits(std::declval<typename X::Message>()) } -> std::convertible_to<std::size_t>;
  { x.update(sref, a, inbox) };
  { x.n() } -> std::convertible_to<int>;
};

/// Derives the jd ("some agent just decided v") field from the decision
/// messages received this round. If both a 0-decision and a 1-decision are
/// heard, 0 wins, matching the priority of the decide-0 branch in the
/// knowledge-based programs.
[[nodiscard]] inline std::optional<Value> jd_from_decisions(bool heard0,
                                                            bool heard1) {
  if (heard0) return Value::zero;
  if (heard1) return Value::one;
  return std::nullopt;
}

}  // namespace eba
