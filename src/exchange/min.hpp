// E_min(n): the minimal information-exchange protocol (paper §6).
//
// Local states are exactly the EBA-context fields ⟨time, init, decided, jd⟩.
// The message alphabet is {0, 1}: an agent sends v to everyone in the round
// in which it performs decide(v), and stays silent otherwise.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>

#include "core/types.hpp"

namespace eba {

struct MinState {
  int time = 0;
  Value init = Value::zero;
  std::optional<Value> decided;
  std::optional<Value> jd;

  friend bool operator==(const MinState&, const MinState&) = default;
};

/// Hash over all state components (E_min states are tiny).
[[nodiscard]] std::size_t hash_value(const MinState& s);

class MinExchange {
 public:
  using State = MinState;
  using Message = Value;
  /// µ ignores the destination: decisions are announced to everyone.
  static constexpr bool kBroadcast = true;

  explicit MinExchange(int n) : n_(n) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  }

  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] State initial_state(AgentId /*i*/, Value init) const {
    return State{.time = 0, .init = init, .decided = {}, .jd = {}};
  }

  /// µ: broadcast v exactly when performing decide(v).
  [[nodiscard]] std::optional<Message> message(const State& /*s*/,
                                               const Action& a,
                                               AgentId /*dest*/) const {
    if (a.is_decide()) return a.value();
    return std::nullopt;
  }

  [[nodiscard]] std::size_t message_bits(const Message& /*m*/) const { return 1; }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

 private:
  int n_;
};

}  // namespace eba

template <>
struct std::hash<eba::MinState> {
  std::size_t operator()(const eba::MinState& s) const noexcept {
    return eba::hash_value(s);
  }
};
