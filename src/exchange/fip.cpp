#include "exchange/fip.hpp"

namespace eba {

void FipExchange::update(State& s, const Action& a,
                         std::span<const std::optional<Message>> inbox) const {
  EBA_REQUIRE(static_cast<int>(inbox.size()) == n_, "inbox size mismatch");
  AgentSet received;
  for (AgentId j = 0; j < n_; ++j)
    if (inbox[static_cast<std::size_t>(j)]) received.insert(j);

  s.graph.advance_round(s.self, received);
  for (AgentId j = 0; j < n_; ++j) {
    const auto& m = inbox[static_cast<std::size_t>(j)];
    if (m && j != s.self) s.graph.merge(**m);
  }

  s.time += 1;
  if (a.is_decide()) {
    EBA_REQUIRE(!s.decided, "double decision reached the exchange");
    s.decided = a.value();
  }
}

void FipExchange::apply_round(State& s, const Action& a, Snapshot&& own,
                              AgentSet received,
                              std::span<const Snapshot* const> merged) const {
  s.graph = std::move(own);
  s.graph.advance_round(s.self, received);
  for (const Snapshot* g : merged) s.graph.merge(*g);

  s.time += 1;
  if (a.is_decide()) {
    EBA_REQUIRE(!s.decided, "double decision reached the exchange");
    s.decided = a.value();
  }
}

}  // namespace eba
