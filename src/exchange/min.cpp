#include "exchange/min.hpp"

#include "exchange/exchange.hpp"

namespace eba {

std::size_t hash_value(const MinState& s) {
  auto enc = [](const std::optional<Value>& v) -> std::size_t {
    return v ? (*v == Value::zero ? 1u : 2u) : 0u;
  };
  std::size_t h = static_cast<std::size_t>(s.time);
  h = h * 31 + static_cast<std::size_t>(to_int(s.init));
  h = h * 31 + enc(s.decided);
  h = h * 31 + enc(s.jd);
  return h;
}

void MinExchange::update(State& s, const Action& a,
                         std::span<const std::optional<Message>> inbox) const {
  EBA_REQUIRE(static_cast<int>(inbox.size()) == n_, "inbox size mismatch");
  s.time += 1;
  if (a.is_decide()) {
    EBA_REQUIRE(!s.decided, "double decision reached the exchange");
    s.decided = a.value();
  }
  bool heard0 = false;
  bool heard1 = false;
  for (const auto& m : inbox) {
    if (!m) continue;
    (*m == Value::zero ? heard0 : heard1) = true;
  }
  s.jd = jd_from_decisions(heard0, heard1);
}

}  // namespace eba
