// E_relay(n): a gossip exchange in which knowledge of an initial 0 is
// relayed eagerly (paper §1).
//
// Beyond the decision announcements of E_min, any agent that knows some
// agent had initial preference 0 keeps broadcasting a relay0 message. This
// is the information exchange under which the classic *0-biased* protocol
// ("decide 0 as soon as you hear about a 0") makes sense. The paper's
// introduction proves that no such protocol can solve EBA under omission
// failures — a faulty agent can sit on the 0 and release it to a single
// agent at the last moment — while under crash failures it is a correct
// (and optimal, Castañeda et al. 2014) strategy. Both facts are reproduced
// mechanically in tests/test_impossibility.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "core/types.hpp"

namespace eba {

/// M0 = {decide0}, M1 = {decide1}, M2 = {relay0, ⊥}.
enum class RelayMsg : std::uint8_t { decide0, decide1, relay0 };

struct RelayState {
  int time = 0;
  Value init = Value::zero;
  std::optional<Value> decided;
  std::optional<Value> jd;
  bool knows0 = false;  ///< the agent knows some agent had initial value 0

  friend bool operator==(const RelayState&, const RelayState&) = default;
};

[[nodiscard]] std::size_t hash_value(const RelayState& s);

class RelayExchange {
 public:
  using State = RelayState;
  using Message = RelayMsg;
  /// µ ignores the destination: decisions and relays are broadcast.
  static constexpr bool kBroadcast = true;

  explicit RelayExchange(int n) : n_(n) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  }

  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] State initial_state(AgentId /*i*/, Value init) const {
    return State{.time = 0,
                 .init = init,
                 .decided = {},
                 .jd = {},
                 .knows0 = init == Value::zero};
  }

  [[nodiscard]] std::optional<Message> message(const State& s, const Action& a,
                                               AgentId /*dest*/) const {
    if (a.is_decide())
      return a.value() == Value::zero ? RelayMsg::decide0 : RelayMsg::decide1;
    if (s.knows0) return RelayMsg::relay0;
    return std::nullopt;
  }

  [[nodiscard]] std::size_t message_bits(const Message& /*m*/) const { return 2; }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

 private:
  int n_;
};

}  // namespace eba

template <>
struct std::hash<eba::RelayState> {
  std::size_t operator()(const eba::RelayState& s) const noexcept {
    return eba::hash_value(s);
  }
};
