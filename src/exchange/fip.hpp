// E_fip(n): the full-information exchange (paper §7, §A.2.7).
//
// Local states are ⟨time, init, G⟩ where G is the agent's communication
// graph; every round every agent broadcasts its current graph. Per §7 the
// decision history is *not* part of the local state (so corresponding runs
// of different action protocols have identical states); `FipState` carries a
// cached `decided` flag and an inferred-action table for the action
// protocol's convenience, but equality and hashing ignore both.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "core/types.hpp"
#include "graph/action_table.hpp"
#include "graph/comm_graph.hpp"
#include "graph/knowledge.hpp"

namespace eba {

struct FipState {
  int time = 0;
  AgentId self = 0;
  Value init = Value::zero;
  CommGraph graph;

  /// Cached decision status (derived information; excluded from equality).
  std::optional<Value> decided;
  /// Lazily filled inferred-action cache, owned by POpt (excluded from
  /// equality). Mutable so the action protocol, a pure function of the
  /// state, can memoize.
  mutable ActionTable inferred;
  /// Memoized cones and fault table of `graph`, keyed on graph.revision():
  /// FipExchange::update mutates the graph (advance_round + merges), which
  /// bumps the revision and lazily invalidates this. Excluded from equality;
  /// mutable for the same reason as `inferred`.
  mutable KnowledgeCache knowledge;

  friend bool operator==(const FipState& a, const FipState& b) {
    return a.time == b.time && a.self == b.self && a.init == b.init &&
           a.graph == b.graph;
  }
};

[[nodiscard]] inline std::size_t hash_value(const FipState& s) {
  std::size_t h = static_cast<std::size_t>(s.time);
  h = h * 31 + static_cast<std::size_t>(s.self);
  h = h * 31 + static_cast<std::size_t>(to_int(s.init));
  h = h * 31 + s.graph.hash();
  return h;
}

class FipExchange {
 public:
  using State = FipState;
  /// Graphs are immutable once sent; sharing avoids n copies per broadcast.
  using Message = std::shared_ptr<const CommGraph>;
  /// µ ignores the destination: the graph is broadcast to everyone.
  static constexpr bool kBroadcast = true;
  /// Borrowed-round pipeline (see sim/stepper.hpp): the round moves bare
  /// graphs instead of shared_ptr messages.
  using Snapshot = CommGraph;

  explicit FipExchange(int n) : n_(n) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  }

  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] State initial_state(AgentId i, Value init) const {
    return State{.time = 0,
                 .self = i,
                 .init = init,
                 .graph = CommGraph(n_, i, init),
                 .decided = {},
                 .inferred = {},
                 .knowledge = {}};
  }

  /// µ: broadcast the full graph every round. The EBA-context constraint on
  /// µ is met because a receiver reconstructs the sender's state and infers
  /// its action, so decide(0)/decide(1)/other messages are distinguishable.
  [[nodiscard]] std::optional<Message> message(const State& s,
                                               const Action& /*a*/,
                                               AgentId /*dest*/) const {
    return std::make_shared<const CommGraph>(s.graph);
  }

  [[nodiscard]] std::size_t message_bits(const Message& m) const {
    return m->bit_size();
  }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

  // -- Borrowed-round fast path (sim/stepper.hpp) ---------------------------
  // E_fip broadcasts its graph every round, so the engine can move the
  // graph out as the round's message and rebuild δ from borrowed graphs,
  // avoiding the per-round shared_ptr + deep-copy churn of message().
  // apply_round() must stay observably identical to update() on the
  // equivalent inbox; tests/test_workload.cpp checks state equality.

  /// Moves the state's graph out as its round snapshot; the state's graph
  /// is hollow until apply_round() restores it.
  [[nodiscard]] Snapshot take_snapshot(State& s) const {
    return std::move(s.graph);
  }

  /// Prop 8.1 accounting; equals message_bits() on the copied message.
  [[nodiscard]] std::size_t snapshot_bits(const Snapshot& g) const {
    return g.bit_size();
  }

  /// δ from borrowed snapshots: `own` is the agent's pre-round graph
  /// (moved back or copied by the engine), `received` the senders whose
  /// round message arrived (self included), `merged` the delivered other
  /// senders' snapshots in ascending sender order.
  void apply_round(State& s, const Action& a, Snapshot&& own,
                   AgentSet received,
                   std::span<const Snapshot* const> merged) const;

 private:
  int n_;
};

}  // namespace eba

template <>
struct std::hash<eba::FipState> {
  std::size_t operator()(const eba::FipState& s) const noexcept {
    return eba::hash_value(s);
  }
};
