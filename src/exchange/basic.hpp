// E_basic(n): the basic information-exchange protocol (paper §6).
//
// Like E_min, but an undecided agent with initial preference 1 and jd = ⊥
// additionally broadcasts (init, 1) every round, and local states carry
// #1 — the number of (init, 1) messages received in the last round
// (including the agent's own; see DESIGN.md on self-delivery).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "core/types.hpp"

namespace eba {

/// Message alphabet: M0 = {decide0}, M1 = {decide1}, M2 = {init1, ⊥}.
enum class BasicMsg : std::uint8_t { decide0, decide1, init1 };

struct BasicState {
  int time = 0;
  Value init = Value::zero;
  std::optional<Value> decided;
  std::optional<Value> jd;
  int ones = 0;  ///< "#1": (init,1) messages received in the last round

  friend bool operator==(const BasicState&, const BasicState&) = default;
};

[[nodiscard]] std::size_t hash_value(const BasicState& s);

class BasicExchange {
 public:
  using State = BasicState;
  using Message = BasicMsg;
  /// µ ignores the destination: both message kinds are broadcast.
  static constexpr bool kBroadcast = true;

  explicit BasicExchange(int n) : n_(n) {
    EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "agent count out of range");
  }

  [[nodiscard]] int n() const { return n_; }

  [[nodiscard]] State initial_state(AgentId /*i*/, Value init) const {
    return State{.time = 0, .init = init, .decided = {}, .jd = {}, .ones = 0};
  }

  [[nodiscard]] std::optional<Message> message(const State& s, const Action& a,
                                               AgentId /*dest*/) const {
    if (a.is_decide())
      return a.value() == Value::zero ? BasicMsg::decide0 : BasicMsg::decide1;
    if (s.init == Value::one && !s.decided && !s.jd) return BasicMsg::init1;
    return std::nullopt;
  }

  /// Three-letter alphabet; 2 bits is the natural fixed-width encoding.
  [[nodiscard]] std::size_t message_bits(const Message& /*m*/) const { return 2; }

  void update(State& s, const Action& a,
              std::span<const std::optional<Message>> inbox) const;

 private:
  int n_;
};

}  // namespace eba

template <>
struct std::hash<eba::BasicState> {
  std::size_t operator()(const eba::BasicState& s) const noexcept {
    return eba::hash_value(s);
  }
};
