#include "exchange/authenticated.hpp"

namespace eba {

std::size_t hash_value(const AuthState& s) {
  auto enc = [](const std::optional<Value>& v) -> std::size_t {
    return v ? (*v == Value::zero ? 1u : 2u) : 0u;
  };
  std::size_t h = static_cast<std::size_t>(s.time);
  h = h * 31 + static_cast<std::size_t>(to_int(s.init));
  h = h * 31 + enc(s.decided);
  h = h * 31 + enc(s.jd);
  h = h * 1000003 + static_cast<std::size_t>(s.zeros.bits());
  h = h * 1000003 + static_cast<std::size_t>(s.faults.bits());
  h = h * 31 + static_cast<std::size_t>(s.budget_common);
  h = h * 31 + static_cast<std::size_t>(s.ones);
  h = h * 31 + static_cast<std::size_t>(s.self);
  return h;
}

void AuthExchange::update(State& s, const Action& a,
                          std::span<const std::optional<Message>> inbox) const {
  EBA_REQUIRE(static_cast<int>(inbox.size()) == n_, "inbox size mismatch");
  // δ runs on the pre-round state: the signatures in this inbox were
  // produced at the senders' pre-round time, which equals s.time in a
  // synchronous round.
  const int round_time = s.time;
  detail::accumulate_report_round(
      n_, t_, s, a, [&](AgentId j) -> const ReportMsg* {
        const auto& m = inbox[static_cast<std::size_t>(j)];
        if (!m) return nullptr;
        if (m->sig != sign(j, s.self, round_time, m->payload)) return nullptr;
        return &m->payload;
      });
}

}  // namespace eba
