// Durable binary trace format ("EBTR") with streaming writer and offline
// replay verification.
//
// Container layout (all integers little-endian; see docs/RECOVERY.md for
// the version table):
//
//   magic "EBTR" · u32 version (1 = unkeyed, 2 = keyed) · frames…
//
// Each frame is CRC-guarded (net/serialize.hpp write_frame/read_frame):
//
//   kind 1 HEADER       u64 instance_id, u32 n, u32 t,
//                       word nonfaulty, n × u8 inits
//                       (version 2 appends u64 key_check — the key's
//                       fingerprint, so a wrong key is rejected at the
//                       header as DecodeError::Kind::key_mismatch)
//   kind 2 ROUND        u32 round (1-based, consecutive), n × u8 actions,
//                       n × word sent, n × word delivered
//   kind 3 CERTIFICATE  encode_certificate payload (audit/certificate.hpp)
//
// Exactly one HEADER frame (first), then the ROUND frames in order, then
// exactly one CERTIFICATE frame (last). A trace missing its certificate is
// an unterminated stream — the writer crashed mid-run — and is rejected,
// which is what makes truncation detectable at any byte: either a frame
// CRC breaks, a frame is cut short, or the terminator is missing.
//
// `TraceWriter` is the streaming sink: the workload driver appends one
// ROUND frame per completed round, so a crash loses at most the round in
// flight. `replay_verify` re-derives the certificate from the replayed
// rounds and re-checks the EBA spec offline — corrupt, truncated and
// version-skewed inputs come back as diagnostics, never UB.
#pragma once

#include <string>
#include <vector>

#include "audit/certificate.hpp"
#include "core/spec.hpp"
#include "core/types.hpp"
#include "net/serialize.hpp"

namespace eba {

inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr std::uint32_t kTraceFormatVersionKeyed = 2;
inline constexpr char kTraceMagic[4] = {'E', 'B', 'T', 'R'};

/// Streaming trace sink: header at construction, one frame per round,
/// certificate on finish. All in-memory; callers persist the Bytes.
class TraceWriter {
 public:
  /// A nonzero `key` writes a version-2 container whose header carries the
  /// key fingerprint and whose certificate digests are keyed; key 0 writes
  /// the historical version-1 bytes unchanged.
  TraceWriter(std::uint64_t instance_id, int n, int t, AgentSet nonfaulty,
              const std::vector<Value>& inits, std::uint64_t key = 0);

  /// Appends round `rounds_written()+1`'s planes.
  void add_round(const std::vector<Action>& actions,
                 const std::vector<AgentSet>& sent,
                 const std::vector<AgentSet>& delivered);

  /// Appends every record round in [from_round, record.rounds). Used to
  /// re-open a trace from a restored checkpoint after a crash.
  void add_record_rounds(const RunRecord& record, int from_round = 0);

  [[nodiscard]] int rounds_written() const { return rounds_; }

  /// The container bytes accumulated so far (header + rounds, certificate
  /// pending). FileTraceWriter (store/file_trace.hpp) streams the growing
  /// prefix of exactly these bytes to disk.
  [[nodiscard]] const Bytes& bytes_so_far() const { return out_; }

  /// Appends the certificate frame and returns the finished container.
  /// The writer is spent afterwards.
  [[nodiscard]] Bytes finish(const DecisionCertificate& cert);

 private:
  Bytes out_;
  int n_;
  int rounds_ = 0;
};

/// One-shot convenience: record → finished trace bytes (certificate built
/// here).
[[nodiscard]] Bytes write_trace(const RunRecord& record,
                                std::uint64_t instance_id = 0,
                                std::uint64_t key = 0);

/// A fully parsed trace container.
struct TraceFile {
  std::uint32_t version = 0;
  std::uint64_t instance_id = 0;
  RunRecord record;
  DecisionCertificate certificate;
};

/// Parses and structurally validates a trace. Throws DecodeError (with the
/// failing byte offset in the message) on any corruption, truncation or
/// version skew; it never returns a partially filled trace.
/// `key` must match how the trace was written: a version-1 container
/// demands key 0, a version-2 container demands the key whose fingerprint
/// its header carries — otherwise DecodeError::Kind::key_mismatch.
[[nodiscard]] TraceFile read_trace(const Bytes& bytes, std::uint64_t key = 0);

/// Outcome of offline verification: parse + certificate re-derivation +
/// EBA spec check on the replayed record.
struct ReplayReport {
  bool ok = false;        ///< accepted: parsed, certificate checks, spec agrees
  bool parsed = false;    ///< container decoded (false ⇒ `error` says why)
  bool cert_ok = false;   ///< certificate matches the replayed rounds
  bool complete = false;  ///< the certificate claims a reached decision
  SpecReport spec;        ///< EBA spec over the replayed record
  std::uint32_t version = 0;
  std::uint64_t instance_id = 0;
  int rounds = 0;
  std::string error;      ///< parse diagnostic when !parsed
  std::vector<std::string> cert_errors;

  /// Human-readable one-line summary for tools.
  [[nodiscard]] std::string summary() const;
};

/// Verifies a trace end-to-end. Decode failures are reported, not thrown.
/// `ok` requires: the container parses, the certificate re-derives exactly,
/// and — when the certificate claims a decision — the EBA spec holds on the
/// replayed record. Truncated-horizon runs (no claimed decision) pass
/// without the termination properties, which a cut run cannot satisfy.
[[nodiscard]] ReplayReport replay_verify(const Bytes& bytes,
                                         std::uint64_t key = 0);

}  // namespace eba
