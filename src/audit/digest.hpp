// 64-bit incremental digest for decision certificates (FNV-1a).
//
// Certificates need a cheap, deterministic, order-sensitive digest over the
// packed plane words of a run — not a cryptographic commitment (the threat
// model is corruption and software bugs, not forgery; see docs/RECOVERY.md).
// FNV-1a over little-endian words is endian-stable, allocation-free, and
// fast enough to disappear inside replay verification.
#pragma once

#include <cstdint>

#include "core/agent_set.hpp"

namespace eba {

class Digest64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void u8(std::uint8_t v) { h_ = (h_ ^ v) * kPrime; }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
      u8(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8)
      u8(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }

  void word(AgentSet s) { u64(s.bits()); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

  /// One-shot chaining step: H(prev, a, b) for hash-chain links.
  [[nodiscard]] static std::uint64_t chain(std::uint64_t prev,
                                           std::uint64_t a, std::uint64_t b) {
    Digest64 d;
    d.u64(prev);
    d.u64(a);
    d.u64(b);
    return d.value();
  }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

/// Keyed variant of Digest64 (HMAC-style envelope over the same FNV core).
///
/// With key == 0 this is BIT-IDENTICAL to Digest64 — no inner pad is
/// absorbed and value() returns the inner hash directly — so every durable
/// artifact written before keys existed keeps its exact bytes, and unkeyed
/// remains the default everywhere. With key != 0 the key is folded in twice
/// (inner pad at absorption start, outer pass over the finished inner hash),
/// so a verifier holding the wrong key sees a different digest in every slot
/// and rejects with DecodeError::Kind::key_mismatch. This is tamper
/// *detection* keyed on a shared secret, not a cryptographic MAC — see the
/// threat model in docs/RECOVERY.md.
class KeyedDigest64 {
 public:
  static constexpr std::uint64_t kInnerPad = 0x3636363636363636ull;
  static constexpr std::uint64_t kOuterPad = 0x5c5c5c5c5c5c5c5cull;

  explicit KeyedDigest64(std::uint64_t key) : key_(key) {
    if (key_ != 0) inner_.u64(key_ ^ kInnerPad);
  }

  void u8(std::uint8_t v) { inner_.u8(v); }
  void u32(std::uint32_t v) { inner_.u32(v); }
  void u64(std::uint64_t v) { inner_.u64(v); }
  void word(AgentSet s) { inner_.word(s); }

  [[nodiscard]] std::uint64_t value() const {
    if (key_ == 0) return inner_.value();
    Digest64 outer;
    outer.u64(key_ ^ kOuterPad);
    outer.u64(inner_.value());
    return outer.value();
  }

  /// Keyed chaining step; key == 0 matches Digest64::chain exactly.
  [[nodiscard]] static std::uint64_t chain(std::uint64_t key,
                                           std::uint64_t prev,
                                           std::uint64_t a, std::uint64_t b) {
    KeyedDigest64 d(key);
    d.u64(prev);
    d.u64(a);
    d.u64(b);
    return d.value();
  }

  /// Fingerprint of the key itself, stored in keyed containers so a wrong
  /// key is diagnosed at the header instead of as a digest mismatch deep in
  /// the payload. Not the key: recovering `key` from it needs a preimage.
  [[nodiscard]] static std::uint64_t key_check_word(std::uint64_t key) {
    KeyedDigest64 d(key);
    d.u64(0x6b6579636865636bull);  // "keycheck"
    return d.value();
  }

 private:
  std::uint64_t key_;
  Digest64 inner_;
};

}  // namespace eba
