// 64-bit incremental digest for decision certificates (FNV-1a).
//
// Certificates need a cheap, deterministic, order-sensitive digest over the
// packed plane words of a run — not a cryptographic commitment (the threat
// model is corruption and software bugs, not forgery; see docs/RECOVERY.md).
// FNV-1a over little-endian words is endian-stable, allocation-free, and
// fast enough to disappear inside replay verification.
#pragma once

#include <cstdint>

#include "core/agent_set.hpp"

namespace eba {

class Digest64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void u8(std::uint8_t v) { h_ = (h_ ^ v) * kPrime; }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
      u8(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8)
      u8(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }

  void word(AgentSet s) { u64(s.bits()); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

  /// One-shot chaining step: H(prev, a, b) for hash-chain links.
  [[nodiscard]] static std::uint64_t chain(std::uint64_t prev,
                                           std::uint64_t a, std::uint64_t b) {
    Digest64 d;
    d.u64(prev);
    d.u64(a);
    d.u64(b);
    return d.value();
  }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace eba
