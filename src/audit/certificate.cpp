#include "audit/certificate.hpp"

#include <algorithm>

#include "audit/digest.hpp"

namespace eba {
namespace {

std::uint8_t action_byte(const Action& a) {
  if (!a.is_decide()) return 0;
  return a.value() == Value::zero ? 1 : 2;
}

std::uint64_t header_digest_of(const RunRecord& record, std::uint64_t key) {
  KeyedDigest64 d(key);
  d.u32(static_cast<std::uint32_t>(record.n));
  d.u32(static_cast<std::uint32_t>(record.t));
  d.word(record.nonfaulty);
  for (Value v : record.inits) d.u8(static_cast<std::uint8_t>(to_int(v)));
  return d.value();
}

std::uint64_t pattern_digest_of(const RunRecord& record, std::uint64_t key) {
  KeyedDigest64 d(key);
  d.word(record.nonfaulty);
  for (int m = 0; m < record.rounds; ++m) {
    const std::size_t um = static_cast<std::size_t>(m);
    for (AgentId i = 0; i < record.n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      d.word(record.sent[um][ui].minus(record.delivered[um][ui]));
    }
  }
  return d.value();
}

std::uint64_t round_digest_of(const RunRecord& record, int m,
                              std::uint64_t key) {
  const std::size_t um = static_cast<std::size_t>(m);
  KeyedDigest64 d(key);
  d.u32(static_cast<std::uint32_t>(m + 1));
  for (AgentId i = 0; i < record.n; ++i)
    d.u8(action_byte(record.actions[um][static_cast<std::size_t>(i)]));
  for (AgentId i = 0; i < record.n; ++i)
    d.word(record.sent[um][static_cast<std::size_t>(i)]);
  for (AgentId i = 0; i < record.n; ++i)
    d.word(record.delivered[um][static_cast<std::size_t>(i)]);
  return d.value();
}

std::uint64_t final_digest_of(const DecisionCertificate& cert,
                              std::uint64_t key) {
  KeyedDigest64 d(key);
  d.u64(cert.instance_id);
  d.u64(cert.pattern_digest);
  d.u64(cert.evidence.empty() ? cert.header_digest
                              : cert.evidence.back().chain);
  d.u8(cert.decided_value
           ? (*cert.decided_value == Value::zero ? 1 : 2)
           : 0);
  d.u32(static_cast<std::uint32_t>(cert.decided_round));
  return d.value();
}

}  // namespace

DecisionCertificate build_certificate(const RunRecord& record,
                                      std::uint64_t instance_id,
                                      std::uint64_t key) {
  EBA_REQUIRE(record.n >= 1, "certificate over an empty record");
  DecisionCertificate cert;
  cert.instance_id = instance_id;
  cert.n = record.n;
  cert.t = record.t;
  cert.rounds = record.rounds;
  cert.header_digest = header_digest_of(record, key);
  cert.pattern_digest = pattern_digest_of(record, key);

  std::uint64_t chain = cert.header_digest;
  cert.evidence.reserve(static_cast<std::size_t>(record.rounds));
  for (int m = 0; m < record.rounds; ++m) {
    RoundEvidence link;
    link.round = m + 1;
    link.evidence_digest = round_digest_of(record, m, key);
    chain = KeyedDigest64::chain(key, chain,
                                 static_cast<std::uint64_t>(link.round),
                                 link.evidence_digest);
    link.chain = chain;
    cert.evidence.push_back(link);
  }

  // Decision summary: set only when every nonfaulty agent decided and all
  // nonfaulty decisions agree — the certificate never claims a decision a
  // truncated or violating run did not reach.
  std::optional<Value> value;
  bool unanimous = true;
  bool all_decided = true;
  int last_round = -1;
  for (AgentId i : record.nonfaulty) {
    const std::optional<Decision> d = record.decision(i);
    if (!d) {
      all_decided = false;
      continue;
    }
    if (value && *value != d->value) unanimous = false;
    if (!value) value = d->value;
    if (d->round > last_round) last_round = d->round;
  }
  if (all_decided && unanimous && value) {
    cert.decided_value = value;
    cert.decided_round = last_round;
  }
  cert.final_digest = final_digest_of(cert, key);
  return cert;
}

CertificateCheck verify_certificate(const DecisionCertificate& cert,
                                    const RunRecord& record,
                                    std::uint64_t key) {
  CertificateCheck check;
  auto fail = [&check](std::string msg) {
    check.ok = false;
    check.errors.push_back(std::move(msg));
  };

  const DecisionCertificate want =
      build_certificate(record, cert.instance_id, key);
  if (cert.n != want.n || cert.t != want.t || cert.rounds != want.rounds)
    fail("certificate header (n, t, rounds) does not match the record");
  if (cert.header_digest != want.header_digest)
    fail("header digest mismatch: inits or nonfaulty set were altered");
  if (cert.pattern_digest != want.pattern_digest)
    fail("pattern digest mismatch: realized omissions were altered");
  const std::size_t links =
      std::min(cert.evidence.size(), want.evidence.size());
  if (cert.evidence.size() != want.evidence.size())
    fail("evidence chain length " + std::to_string(cert.evidence.size()) +
         " does not cover the record's " +
         std::to_string(want.evidence.size()) + " rounds");
  for (std::size_t k = 0; k < links; ++k) {
    if (cert.evidence[k] == want.evidence[k]) continue;
    fail("evidence chain diverges at round " +
         std::to_string(want.evidence[k].round));
    break;  // every later link differs by construction; one message suffices
  }
  if (cert.decided_value != want.decided_value ||
      cert.decided_round != want.decided_round)
    fail("decision summary does not match the replayed record");
  if (cert.final_digest != want.final_digest)
    fail("final digest mismatch");
  return check;
}

void encode_certificate(Writer& w, const DecisionCertificate& cert) {
  w.u64(cert.instance_id);
  w.u32(static_cast<std::uint32_t>(cert.n));
  w.u32(static_cast<std::uint32_t>(cert.t));
  w.u32(static_cast<std::uint32_t>(cert.rounds));
  w.u64(cert.header_digest);
  w.u64(cert.pattern_digest);
  w.u32(static_cast<std::uint32_t>(cert.evidence.size()));
  for (const RoundEvidence& link : cert.evidence) {
    w.u32(static_cast<std::uint32_t>(link.round));
    w.u64(link.evidence_digest);
    w.u64(link.chain);
  }
  w.u8(cert.decided_value
           ? (*cert.decided_value == Value::zero ? 1 : 2)
           : 0);
  w.u32(static_cast<std::uint32_t>(cert.decided_round));
  w.u64(cert.final_digest);
}

DecisionCertificate decode_certificate(Reader& r) {
  using Kind = DecodeError::Kind;
  DecisionCertificate cert;
  cert.instance_id = r.u64();
  cert.n = static_cast<int>(r.u32());
  cert.t = static_cast<int>(r.u32());
  cert.rounds = static_cast<int>(r.u32());
  if (!(cert.n >= 1 && cert.n <= kMaxAgents) || cert.t < 0 ||
      cert.t >= cert.n || cert.rounds < 0 || cert.rounds > 4096)
    throw DecodeError(Kind::malformed, "bad certificate header");
  cert.header_digest = r.u64();
  cert.pattern_digest = r.u64();
  const std::uint32_t links = r.u32();
  if (links != static_cast<std::uint32_t>(cert.rounds))
    throw DecodeError(Kind::malformed,
                      "certificate chain length disagrees with its rounds");
  cert.evidence.reserve(links);
  for (std::uint32_t k = 0; k < links; ++k) {
    RoundEvidence link;
    link.round = static_cast<int>(r.u32());
    if (link.round != static_cast<int>(k) + 1)
      throw DecodeError(Kind::malformed, "certificate chain rounds not 1..R");
    link.evidence_digest = r.u64();
    link.chain = r.u64();
    cert.evidence.push_back(link);
  }
  const std::uint8_t tag = r.u8();
  if (tag > 2) throw DecodeError(Kind::malformed, "bad decided-value tag");
  if (tag != 0) cert.decided_value = tag == 1 ? Value::zero : Value::one;
  cert.decided_round = static_cast<int>(r.u32());
  if (tag == 0 && cert.decided_round != -1)
    throw DecodeError(Kind::malformed,
                      "undecided certificate carries a decision round");
  if (tag != 0 && !(cert.decided_round >= 1 && cert.decided_round <= cert.rounds))
    throw DecodeError(Kind::malformed, "decision round outside the run");
  cert.final_digest = r.u64();
  return cert;
}

}  // namespace eba
