// Decision certificates: compact, hash-chained evidence that an agreement
// instance decided what it claims to have decided.
//
// A certificate is derived from the protocol-agnostic RunRecord. Every
// round contributes an evidence digest over its packed plane words
// (actions, sent, delivered); digests are folded into a hash chain whose
// head, together with the realized-omission pattern digest and the decision
// summary, forms the final (instance, pattern_digest, decided_value, round)
// record. Anyone holding the replayed trace can rebuild the chain and
// compare — `verify_certificate` below, and the standalone `replay_verify`
// binary (tools/) combine this with the offline EBA spec check
// (core/spec.hpp), making a decided value an independently checkable
// artifact instead of an in-memory boolean.
//
// This is the audit-trail half of the evidence-based pattern: the digest is
// a corruption/bug detector, not a cryptographic commitment (no signatures
// — authenticated agreement is future work; see docs/RECOVERY.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/serialize.hpp"

namespace eba {

/// One link of the evidence chain. `chain` = H(prev_chain, round, digest),
/// seeded with the header digest, so any reordering, dropping or edit of a
/// round breaks every later link.
struct RoundEvidence {
  int round = 0;                      ///< 1-based protocol round (m+1)
  std::uint64_t evidence_digest = 0;  ///< digest over the round's planes
  std::uint64_t chain = 0;            ///< running chain value after this round

  friend bool operator==(const RoundEvidence&, const RoundEvidence&) = default;
};

struct DecisionCertificate {
  std::uint64_t instance_id = 0;
  int n = 0;
  int t = 0;
  int rounds = 0;
  /// Digest over the context: n, t, nonfaulty set, initial preferences.
  std::uint64_t header_digest = 0;
  /// Digest over the realized omissions visible in the record — the
  /// per-round (sent \ delivered) planes. For adaptive adversaries this is
  /// the REALIZED pattern, which is exactly what must survive snapshots.
  std::uint64_t pattern_digest = 0;
  std::vector<RoundEvidence> evidence;
  /// The unanimous nonfaulty decision, when the run reached one; nullopt
  /// for truncated (max_rounds-cut) or violating runs.
  std::optional<Value> decided_value;
  /// Last round in which a nonfaulty agent first decided (-1 if none).
  int decided_round = -1;
  /// Chain head folded with the decision summary: the certificate's value.
  std::uint64_t final_digest = 0;

  friend bool operator==(const DecisionCertificate&,
                         const DecisionCertificate&) = default;
};

/// Builds the certificate for a (possibly truncated) run record. With a
/// nonzero `key` every digest slot is computed under KeyedDigest64 instead
/// of the plain FNV core — same layout, same widths, forgery-evident to any
/// holder of the key (key 0 reproduces the historical unkeyed bytes
/// exactly; see audit/digest.hpp).
[[nodiscard]] DecisionCertificate build_certificate(
    const RunRecord& record, std::uint64_t instance_id = 0,
    std::uint64_t key = 0);

struct CertificateCheck {
  bool ok = true;
  std::vector<std::string> errors;
};

/// Re-derives the certificate from `record` and compares link by link;
/// reports every divergence (wrong chain link, edited decision, wrong
/// pattern digest) instead of stopping at the first.
[[nodiscard]] CertificateCheck verify_certificate(
    const DecisionCertificate& cert, const RunRecord& record,
    std::uint64_t key = 0);

/// Certificate codec (used inside trace files and standalone). The decoder
/// rejects structurally impossible certificates with DecodeError.
void encode_certificate(Writer& w, const DecisionCertificate& cert);
[[nodiscard]] DecisionCertificate decode_certificate(Reader& r);

}  // namespace eba
