#include "audit/trace_file.hpp"

#include "audit/digest.hpp"

namespace eba {
namespace {

using Kind = DecodeError::Kind;

constexpr std::uint8_t kFrameHeader = 1;
constexpr std::uint8_t kFrameRound = 2;
constexpr std::uint8_t kFrameCertificate = 3;

std::uint8_t action_byte(const Action& a) {
  if (!a.is_decide()) return 0;
  return a.value() == Value::zero ? 1 : 2;
}

Action action_of(std::uint8_t b) {
  switch (b) {
    case 0: return Action::noop();
    case 1: return Action::decide(Value::zero);
    case 2: return Action::decide(Value::one);
    default: throw DecodeError(Kind::malformed, "bad action byte in round frame");
  }
}

}  // namespace

TraceWriter::TraceWriter(std::uint64_t instance_id, int n, int t,
                         AgentSet nonfaulty, const std::vector<Value>& inits,
                         std::uint64_t key)
    : n_(n) {
  EBA_REQUIRE(n >= 1 && n <= kMaxAgents, "trace agent count out of range");
  EBA_REQUIRE(static_cast<int>(inits.size()) == n, "trace inits size mismatch");
  for (char c : kTraceMagic) out_.push_back(static_cast<std::uint8_t>(c));
  Writer v;
  v.u32(key == 0 ? kTraceFormatVersion : kTraceFormatVersionKeyed);
  const Bytes vb = v.take();
  out_.insert(out_.end(), vb.begin(), vb.end());

  Writer w;
  w.u64(instance_id);
  w.u32(static_cast<std::uint32_t>(n));
  w.u32(static_cast<std::uint32_t>(t));
  w.word(nonfaulty.bits(), (n + 7) / 8);
  for (Value init : inits) w.u8(static_cast<std::uint8_t>(to_int(init)));
  if (key != 0) w.u64(KeyedDigest64::key_check_word(key));
  write_frame(out_, kFrameHeader, w.take());
}

void TraceWriter::add_round(const std::vector<Action>& actions,
                            const std::vector<AgentSet>& sent,
                            const std::vector<AgentSet>& delivered) {
  EBA_REQUIRE(static_cast<int>(actions.size()) == n_ &&
                  static_cast<int>(sent.size()) == n_ &&
                  static_cast<int>(delivered.size()) == n_,
              "round planes must cover every agent");
  const int row_bytes = (n_ + 7) / 8;
  Writer w;
  w.u32(static_cast<std::uint32_t>(rounds_ + 1));
  for (const Action& a : actions) w.u8(action_byte(a));
  for (const AgentSet& s : sent) w.word(s.bits(), row_bytes);
  for (const AgentSet& s : delivered) w.word(s.bits(), row_bytes);
  write_frame(out_, kFrameRound, w.take());
  rounds_ += 1;
}

void TraceWriter::add_record_rounds(const RunRecord& record, int from_round) {
  EBA_REQUIRE(record.n == n_, "record/trace agent count mismatch");
  EBA_REQUIRE(from_round == rounds_,
              "record rounds must continue the stream without a gap");
  for (int m = from_round; m < record.rounds; ++m) {
    const std::size_t um = static_cast<std::size_t>(m);
    add_round(record.actions[um], record.sent[um], record.delivered[um]);
  }
}

Bytes TraceWriter::finish(const DecisionCertificate& cert) {
  EBA_REQUIRE(cert.rounds == rounds_,
              "certificate must cover exactly the written rounds");
  Writer w;
  encode_certificate(w, cert);
  write_frame(out_, kFrameCertificate, w.take());
  return std::move(out_);
}

Bytes write_trace(const RunRecord& record, std::uint64_t instance_id,
                  std::uint64_t key) {
  TraceWriter writer(instance_id, record.n, record.t, record.nonfaulty,
                     record.inits, key);
  writer.add_record_rounds(record);
  return writer.finish(build_certificate(record, instance_id, key));
}

TraceFile read_trace(const Bytes& bytes, std::uint64_t key) {
  if (bytes.size() < 8)
    throw DecodeError(Kind::truncated, "container shorter than its preamble");
  for (std::size_t k = 0; k < 4; ++k)
    if (bytes[k] != static_cast<std::uint8_t>(kTraceMagic[k]))
      throw DecodeError(Kind::bad_magic, "not an EBTR trace container");
  std::uint32_t version = 0;
  for (int b = 0; b < 4; ++b)
    version |= static_cast<std::uint32_t>(bytes[4 + static_cast<std::size_t>(b)])
               << (8 * b);
  if (version != kTraceFormatVersion && version != kTraceFormatVersionKeyed)
    throw DecodeError(Kind::bad_version,
                      "trace version " + std::to_string(version) +
                          " (this build reads versions " +
                          std::to_string(kTraceFormatVersion) + " and " +
                          std::to_string(kTraceFormatVersionKeyed) + ")");
  if (version == kTraceFormatVersion && key != 0)
    throw DecodeError(Kind::key_mismatch,
                      "a key was supplied but the trace is unkeyed");
  if (version == kTraceFormatVersionKeyed && key == 0)
    throw DecodeError(Kind::key_mismatch,
                      "the trace is keyed but no key was supplied");

  TraceFile trace;
  trace.version = version;
  std::size_t pos = 8;
  bool have_header = false;
  bool have_certificate = false;
  int row_bytes = 0;
  std::uint64_t full = 0;

  while (pos < bytes.size()) {
    if (have_certificate)
      throw DecodeError(Kind::trailing,
                        "frames after the certificate terminator");
    const Frame frame = read_frame(bytes, pos);
    Reader r(frame.payload);
    switch (frame.kind) {
      case kFrameHeader: {
        if (have_header)
          throw DecodeError(Kind::malformed, "duplicate header frame");
        trace.instance_id = r.u64();
        trace.record.n = static_cast<int>(r.u32());
        trace.record.t = static_cast<int>(r.u32());
        if (!(trace.record.n >= 1 && trace.record.n <= kMaxAgents) ||
            trace.record.t < 0 || trace.record.t >= trace.record.n)
          throw DecodeError(Kind::malformed, "bad trace header (n, t)");
        row_bytes = (trace.record.n + 7) / 8;
        full = AgentSet::all(trace.record.n).bits();
        const std::uint64_t nonfaulty = r.word(row_bytes);
        if ((nonfaulty & ~full) != 0)
          throw DecodeError(Kind::malformed,
                            "nonfaulty set outside the population");
        trace.record.nonfaulty = AgentSet(nonfaulty);
        for (int i = 0; i < trace.record.n; ++i) {
          const std::uint8_t b = r.u8();
          if (b > 1) throw DecodeError(Kind::malformed, "bad init byte");
          trace.record.inits.push_back(value_of(b));
        }
        if (version == kTraceFormatVersionKeyed &&
            r.u64() != KeyedDigest64::key_check_word(key))
          throw DecodeError(Kind::key_mismatch,
                            "trace was written under a different key");
        have_header = true;
        break;
      }
      case kFrameRound: {
        if (!have_header)
          throw DecodeError(Kind::missing_frame,
                            "round frame before the header");
        const int round = static_cast<int>(r.u32());
        if (round != trace.record.rounds + 1)
          throw DecodeError(Kind::malformed,
                            "round frames out of order at round " +
                                std::to_string(round));
        const int n = trace.record.n;
        std::vector<Action> actions;
        actions.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) actions.push_back(action_of(r.u8()));
        std::vector<AgentSet> sent;
        sent.reserve(static_cast<std::size_t>(n));
        for (AgentId i = 0; i < n; ++i) {
          const std::uint64_t row = r.word(row_bytes);
          if ((row & ~full) != 0 || (row >> i) & 1u)
            throw DecodeError(Kind::malformed,
                              "sent row outside the population");
          sent.push_back(AgentSet(row));
        }
        std::vector<AgentSet> delivered;
        delivered.reserve(static_cast<std::size_t>(n));
        for (AgentId i = 0; i < n; ++i) {
          const std::uint64_t row = r.word(row_bytes);
          if ((row & ~sent[static_cast<std::size_t>(i)].bits()) != 0)
            throw DecodeError(Kind::malformed,
                              "delivered row not a subset of sent");
          delivered.push_back(AgentSet(row));
        }
        trace.record.actions.push_back(std::move(actions));
        trace.record.sent.push_back(std::move(sent));
        trace.record.delivered.push_back(std::move(delivered));
        trace.record.rounds += 1;
        break;
      }
      case kFrameCertificate: {
        if (!have_header)
          throw DecodeError(Kind::missing_frame,
                            "certificate frame before the header");
        trace.certificate = decode_certificate(r);
        have_certificate = true;
        break;
      }
      default:
        throw DecodeError(Kind::malformed,
                          "unknown frame kind " + std::to_string(frame.kind));
    }
    if (!r.exhausted())
      throw DecodeError(Kind::trailing, "frame payload has unconsumed bytes");
  }
  if (!have_header)
    throw DecodeError(Kind::missing_frame, "trace has no header frame");
  if (!have_certificate)
    throw DecodeError(Kind::missing_frame,
                      "trace has no certificate terminator (writer crashed "
                      "mid-run or the file was cut)");
  return trace;
}

std::string ReplayReport::summary() const {
  if (!parsed) return "REJECTED: " + error;
  std::string s = ok ? "OK" : "FAILED";
  s += ": version " + std::to_string(version) + ", instance " +
       std::to_string(instance_id) + ", " + std::to_string(rounds) +
       " rounds, certificate " + (cert_ok ? "valid" : "INVALID");
  if (complete)
    s += ", spec " + std::string(spec.ok() ? "holds" : "VIOLATED");
  else
    s += ", run truncated (no decision claimed)";
  for (const std::string& e : cert_errors) s += "\n  - " + e;
  for (const std::string& v : spec.violations) s += "\n  - spec: " + v;
  return s;
}

ReplayReport replay_verify(const Bytes& bytes, std::uint64_t key) {
  ReplayReport report;
  TraceFile trace;
  try {
    trace = read_trace(bytes, key);
  } catch (const DecodeError& e) {
    report.error = e.what();
    return report;
  }
  report.parsed = true;
  report.version = trace.version;
  report.instance_id = trace.instance_id;
  report.rounds = trace.record.rounds;

  const CertificateCheck check =
      verify_certificate(trace.certificate, trace.record, key);
  report.cert_ok = check.ok;
  report.cert_errors = check.errors;
  report.complete = trace.certificate.decided_value.has_value();
  report.spec = check_eba(trace.record);
  report.ok = report.cert_ok && (!report.complete || report.spec.ok());
  return report;
}

}  // namespace eba
