#!/usr/bin/env python3
"""Perf regression gate for the committed BENCH_*.json baselines.

Compares a freshly produced google-benchmark JSON report (bench_perf →
BENCH_perf.json) against the committed baseline and fails if any gated
benchmark regressed by more than the allowed factor (default 2x, per the
ROADMAP "CI perf regression gate" item). Beyond bench_perf, each native-JSON
bench is a named series in the SERIES registry below; passing its
--baseline-<name>/--fresh-<name> pair runs the matching checker:

  throughput — headline decided-instances/sec, the >=5x worker-pool edge
      over the sequential thread-per-agent cluster, the 1000-instance
      completion floor, and worker scaling.
  synthesis  — headline optimized wall time, the >=5x same-machine speedup
      over the pre-optimization synthesizer, and every point's decisions
      matching its reference.
  go         — headline representative-world sweep wall time, spec coverage
      and correctness of every sweep, and the Example-7.1 GO shortcut rows.
  adversary  — worst-case search rows finding the analytic worst rounds,
      the Example-7.1 anchor, adaptive-vs-static, violation-free fuzz rows,
      and headline search wall time.
  recovery   — replay-verification throughput, traces verifying offline,
      snapshot/crash runs matching uninterrupted records, and the tamper
      sweep rejecting every mutation.
  scale      — orbit-level run reuse (bench_scale): headline relabel-path
      wall time against the committed baseline, the >=5x same-machine
      speedup of relabeling over re-simulation, every reuse row pinned
      bit-identical to re-simulation, and every representative-world spec
      sweep covering its unreduced space violation-free.
  durability — fsync'd journal append throughput (in-memory VFS; the disk
      row is informational), delta checkpoints staying smaller than full
      ones, every mid-round durable crash storm matching its uninterrupted
      records, and the torn-write sweep never surfacing a wrong record.
  zoo        — protocol comparison matrix (bench_zoo): headline matrix wall
      time, strict spec on every run, the early stoppers' min(f+2, t+2)
      round bound, and the P_opt <= P_es <= P_basic domination order.

Only hot-path benchmarks are gated, and the threshold is deliberately
coarse (2x): the committed baseline and a CI runner are different machines,
so the gate is meant to catch algorithmic regressions (a hot path sliding
back toward the pre-packed implementation), not few-percent noise. The
speedup checks have no such caveat — they are same-machine ratios. Refresh
the committed baselines (cmake --build build --target bench_all) whenever a
PR intentionally changes these numbers.

Usage:
  ci/check_bench.py --baseline BENCH_perf.json --fresh fresh/BENCH_perf.json \
      [--baseline-<series> BENCH_<series>.json \
       --fresh-<series> fresh/BENCH_<series>.json]... \
      [--max-ratio 2.0] [--min-speedup 5.0] [--min-synthesis-speedup 5.0] \
      [--min-scale-speedup 5.0]
"""

import argparse
import json
import sys

# Benchmarks whose regression fails the gate. Names must match the
# google-benchmark "name" field exactly.
GATED = [
    "BM_GraphMerge/8",
    "BM_GraphMerge/16",
    "BM_GraphMerge/32",
    "BM_ConeConstruction/8",
    "BM_ConeConstruction/16",
    "BM_ConeConstruction/32",
    "BM_ExtractView/8",
    "BM_ExtractView/16",
    "BM_ExtractView/32",
    "BM_CommonTest/8",
    "BM_CommonTest/16",
    "BM_CommonTest/32",
    "BM_FullRunPOpt/8",
    "BM_FullRunPOpt/16",
    "BM_FullRunPOpt/24",
    "BM_FullRunPOpt/32",
]


def load_pair(baseline_path, fresh_path):
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    return baseline, fresh


def gate_headline_ratio(label, base_value, fresh_value, max_ratio, failures,
                        unit="s", lower_is_better=True):
    """Prints one baseline/fresh/ratio line and appends a failure when the
    fresh value regressed by more than max_ratio."""
    if lower_is_better:
        ratio = fresh_value / base_value if base_value > 0 else float("inf")
    else:
        ratio = base_value / fresh_value if fresh_value > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{label:<24} {base_value:>11.4f}{unit} {fresh_value:>11.4f}{unit} "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"{label}: {fresh_value:.4f}{unit} vs baseline "
            f"{base_value:.4f}{unit} ({ratio:.2f}x "
            f"{'slower' if lower_is_better else 'worse'} > {max_ratio}x)")


def check_throughput(baseline_path, fresh_path, args, failures):
    """Gates the headline decided-instances/sec of BENCH_throughput.json."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    base_dps = float(baseline["headline"]["decided_per_sec"])
    fresh_dps = float(fresh["headline"]["decided_per_sec"])
    gate_headline_ratio("throughput headline", base_dps, fresh_dps,
                        args.max_ratio, failures, unit="/s",
                        lower_is_better=False)

    # Same acceptance floor as bench_throughput's own exit check: at least
    # 1000 concurrent instances must complete (the fresh report's admitted
    # count is what matters; the baseline may have sized its sweep
    # differently).
    completed = int(fresh["headline"]["completed"])
    admitted = int(fresh["headline"]["instances"])
    if completed < 1000:
        failures.append(
            f"throughput headline: only {completed}/{admitted} concurrent "
            f"instances completed (minimum 1000)")

    speedup = float(fresh["speedup_vs_thread_per_agent"])
    print(f"{'pool vs thread/agent':<24} "
          f"{'(min ' + str(args.min_speedup) + 'x)':>12} {speedup:>10.2f}x")
    if speedup < args.min_speedup:
        failures.append(
            f"worker pool only {speedup:.2f}x the sequential thread-per-agent "
            f"cluster (minimum {args.min_speedup}x)")

    # Worker-scaling gate (same-machine ratio, like the speedup check): the
    # best multi-worker row must not fall below half the workers:1 row. The
    # loose 0.5 tolerance absorbs single-core CI runners, where extra workers
    # only add scheduling overhead (observed ratios 0.7-0.85 on one core) —
    # what the gate catches is a pool that became MUCH slower than running
    # single-threaded, i.e. a contention bug.
    scaling = fresh.get("worker_scaling", [])
    if scaling:
        single = [p for p in scaling if int(p["workers"]) == 1]
        multi = [p for p in scaling if int(p["workers"]) > 1]
        if not single or not multi:
            failures.append("worker_scaling must include a workers:1 row and "
                            "at least one multi-worker row")
        else:
            single_dps = float(single[0]["decided_per_sec"])
            best_multi = max(float(p["decided_per_sec"]) for p in multi)
            ratio = best_multi / single_dps if single_dps > 0 else 0.0
            print(f"{'worker scaling':<24} {single_dps:>10.0f}/s "
                  f"{best_multi:>10.0f}/s {ratio:>7.2f}x")
            if ratio < 0.5:
                failures.append(
                    f"multi-worker throughput {best_multi:.0f}/s fell below "
                    f"0.5x the single-worker row {single_dps:.0f}/s")
    else:
        failures.append("fresh throughput report has no worker_scaling rows")


def check_synthesis(baseline_path, fresh_path, args, failures):
    """Gates the headline of BENCH_synthesis.json."""
    baseline, fresh = load_pair(baseline_path, fresh_path)
    min_speedup = args.min_synthesis_speedup

    gate_headline_ratio("synthesis headline",
                        float(baseline["headline"]["optimized_seconds"]),
                        float(fresh["headline"]["optimized_seconds"]),
                        args.max_ratio, failures)

    # Same-machine ratio, immune to runner speed: the optimized synthesizer
    # must stay >= min_speedup over the options-off (pre-PR) synthesizer on
    # the n=4 full-enumeration config.
    speedup = fresh["headline"]["speedup"]
    speedup_cell = f"{float(speedup):.2f}x" if speedup is not None else "null"
    print(f"{'synthesis vs pre-PR':<24} "
          f"{'(min ' + str(min_speedup) + 'x)':>12} {speedup_cell:>11}")
    if speedup is None or float(speedup) < min_speedup:
        failures.append(
            f"optimized synthesizer only {speedup}x the pre-optimization "
            f"baseline (minimum {min_speedup}x)")

    for point in fresh.get("points", []):
        if not point.get("decisions_match", False):
            failures.append(
                f"synthesis point {point.get('label')}: decisions diverge "
                f"from the reference protocol")


def check_go(baseline_path, fresh_path, args, failures):
    """Gates BENCH_go.json: headline sweep wall time, spec coverage, and the
    Example-7.1 GO shortcut rows."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("go headline sweep",
                        float(baseline["headline"]["seconds"]),
                        float(fresh["headline"]["seconds"]),
                        args.max_ratio, failures)

    for name in ("headline", "sweep_n5"):
        sweep = fresh.get(name, {})
        if not sweep.get("spec_ok", False):
            failures.append(f"go {name}: EBA spec violated on a GO orbit")
        if sweep.get("covered") != sweep.get("space"):
            failures.append(
                f"go {name}: representative weights cover "
                f"{sweep.get('covered')} of {sweep.get('space')} worlds")
    if not fresh.get("scale", {}).get("spec_ok", False):
        failures.append("go scale point: EBA spec violated on a sampled run")
    for name in ("example71_go", "example71_go_boundary"):
        if not fresh.get(name, {}).get("ok", False):
            failures.append(f"go {name}: expected decision rounds not met")


def check_adversary(baseline_path, fresh_path, args, failures):
    """Gates BENCH_adversary.json: worst-case search rows must keep finding
    the analytic worst decision rounds, the Example-7.1 anchor and the
    adaptive-vs-static comparison must hold, every fuzz row must stay
    violation-free, and the headline search must not regress >max-ratio in
    wall time against the committed baseline."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("adversary headline",
                        float(baseline["headline"]["seconds"]),
                        float(fresh["headline"]["seconds"]),
                        args.max_ratio, failures)

    for row in fresh.get("worst_case", []):
        if not row.get("ok", False):
            failures.append(
                f"adversary {row.get('label')}: found round "
                f"{row.get('found_round')} vs expected "
                f"{row.get('expected_round')}")
    if not fresh.get("example71", {}).get("ok", False):
        failures.append("adversary example71: decision rounds diverge from "
                        "the paper's analytic values")
    adaptive = fresh.get("adaptive", {})
    if not adaptive.get("ok", False):
        failures.append(
            f"adaptive strategies (worst round "
            f"{adaptive.get('adaptive_worst_round')}) lost to blind static "
            f"sampling (worst round {adaptive.get('static_worst_round')})")
    for row in fresh.get("fuzz", []):
        if not row.get("spec_ok", False):
            failures.append(
                f"adversary {row.get('label')}: {row.get('violations')} spec "
                f"violations in {row.get('runs')} fuzz runs")


def check_recovery(baseline_path, fresh_path, args, failures):
    """Gates BENCH_recovery.json: replay-verification throughput against the
    committed baseline, plus every correctness flag — traces verifying
    offline, snapshot/crash runs matching uninterrupted records, and the
    tamper sweep rejecting every mutation."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("recovery replay",
                        float(baseline["headline"]["traces_per_sec"]),
                        float(fresh["headline"]["traces_per_sec"]),
                        args.max_ratio, failures, unit="/s",
                        lower_is_better=False)

    if not fresh.get("headline", {}).get("ok", False):
        failures.append("recovery headline: a streamed trace failed offline "
                        "verification")
    snapshot = fresh.get("snapshot", {})
    if not snapshot.get("ok", False):
        failures.append("recovery snapshot: every-round checkpoints changed "
                        "the run records")
    for row in fresh.get("crash_storms", []):
        if not row.get("ok", False):
            failures.append(
                f"recovery {row.get('label')}: records_equal="
                f"{row.get('records_equal')} traces_ok={row.get('traces_ok')} "
                f"crashes={row.get('crashes')}")
    tamper = fresh.get("tamper", {})
    if not tamper.get("ok", False):
        failures.append(
            f"recovery tamper sweep: {tamper.get('rejected')} of "
            f"{tamper.get('mutations')} mutations rejected")


def check_scale(baseline_path, fresh_path, args, failures):
    """Gates BENCH_scale.json (orbit-level run reuse): headline relabel-path
    wall time against the committed baseline, the same-machine speedup of
    relabeling over re-simulation, every reuse row's bit-identity flags, and
    every representative-world spec sweep's coverage and correctness."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("scale headline reuse",
                        float(baseline["headline"]["seconds"]),
                        float(fresh["headline"]["seconds"]),
                        args.max_ratio, failures)

    # Same-machine ratio: relabeling must stay >= min-scale-speedup over
    # re-simulating the identical run set.
    speedup = float(fresh["headline"]["speedup"])
    print(f"{'relabel vs resimulate':<24} "
          f"{'(min ' + str(args.min_scale_speedup) + 'x)':>12} "
          f"{speedup:>10.2f}x")
    if speedup < args.min_scale_speedup:
        failures.append(
            f"relabel path only {speedup:.2f}x re-simulation on the headline "
            f"context (minimum {args.min_scale_speedup}x)")

    reuse = fresh.get("reuse", [])
    if not reuse:
        failures.append("fresh scale report has no reuse rows")
    for row in reuse:
        if not row.get("identical_to_resimulation", False):
            failures.append(
                f"scale reuse {row.get('label')}: relabel path diverges from "
                f"re-simulation (decisions_match="
                f"{row.get('decisions_match')} knowledge_identical="
                f"{row.get('knowledge_identical')})")

    spec = fresh.get("spec_scale", [])
    if not spec:
        failures.append("fresh scale report has no spec_scale rows")
    for row in spec:
        if not row.get("spec_ok", False):
            failures.append(
                f"scale sweep {row.get('label')}: EBA spec violated")
        if row.get("covered") != row.get("space"):
            failures.append(
                f"scale sweep {row.get('label')}: representative weights "
                f"cover {row.get('covered')} of {row.get('space')} worlds")


def check_durability(baseline_path, fresh_path, args, failures):
    """Gates BENCH_durability.json: fsync'd journal append throughput on the
    in-memory VFS against the committed baseline (the disk row is
    informational — gated: false), delta checkpoints staying smaller than
    full ones, every mid-round durable crash storm matching uninterrupted
    records, and the torn-write sweep never surfacing a wrong record."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("durability append",
                        float(baseline["headline"]["records_per_sec"]),
                        float(fresh["headline"]["records_per_sec"]),
                        args.max_ratio, failures, unit="/s",
                        lower_is_better=False)

    if not fresh.get("headline", {}).get("ok", False):
        failures.append("durability headline: journal reopen lost records")
    disk = fresh.get("disk", {})
    if not disk.get("ok", False):
        # The disk row's throughput is not ratio-gated, but its recovery
        # self-check still must hold.
        failures.append("durability disk row: journal reopen lost records")
    ckpt = fresh.get("checkpoints", {})
    if not ckpt.get("ok", False):
        failures.append(
            f"durability checkpoints: delta bytes {ckpt.get('delta_bytes')} "
            f"not smaller than full bytes {ckpt.get('full_bytes')}")
    for row in fresh.get("crash_storms", []):
        if not row.get("ok", False):
            failures.append(
                f"durability {row.get('label')}: records_equal="
                f"{row.get('records_equal')} traces_ok={row.get('traces_ok')} "
                f"crashes={row.get('crashes')}")
    torn = fresh.get("torn_sweep", {})
    if not torn.get("ok", False):
        failures.append(
            f"durability torn sweep: {torn.get('recovered')} recovered + "
            f"{torn.get('rejected')} rejected of {torn.get('offsets')} tears")


def check_zoo(baseline_path, fresh_path, args, failures):
    """Gates BENCH_zoo.json (protocol comparison matrix): headline matrix
    wall time against the committed baseline, plus every boolean bit —
    strict spec on all 70 runs, the early stoppers' min(f+2, t+2) round
    bound, and the per-agent P_opt <= P_es <= P_basic domination order."""
    baseline, fresh = load_pair(baseline_path, fresh_path)

    gate_headline_ratio("zoo headline matrix",
                        float(baseline["headline"]["seconds"]),
                        float(fresh["headline"]["seconds"]),
                        args.max_ratio, failures)

    headline = fresh.get("headline", {})
    if headline.get("smoke", True):
        failures.append("zoo headline: fresh report is a --smoke run, not "
                        "the full matrix")
    for bit in ("spec_ok", "bounds_ok", "domination_ok"):
        if not headline.get(bit, False):
            failures.append(f"zoo headline: {bit} is false")

    rows = fresh.get("matrix", [])
    if not rows:
        failures.append("fresh zoo report has no matrix rows")
    protocols = {row.get("protocol") for row in rows}
    missing = {"P_min", "P_basic", "P_opt", "P_es", "P_auth"} - protocols
    if missing:
        failures.append(f"zoo matrix is missing protocols: {sorted(missing)}")
    for row in rows:
        label = (f"{row.get('protocol')} n={row.get('n')} t={row.get('t')} "
                 f"f={row.get('f')}")
        if not row.get("spec_ok", False):
            failures.append(f"zoo {label}: EBA spec violated")
        if not row.get("bound_ok", False):
            failures.append(f"zoo {label}: early-stopping round bound missed")


# Native-JSON bench series: each (name, checker) row grows a
# --baseline-<name>/--fresh-<name> argument pair; the checker runs when the
# pair is supplied and sees (baseline_path, fresh_path, args, failures).
SERIES = [
    ("throughput", check_throughput),
    ("synthesis", check_synthesis),
    ("go", check_go),
    ("adversary", check_adversary),
    ("recovery", check_recovery),
    ("scale", check_scale),
    ("durability", check_durability),
    ("zoo", check_zoo),
]


def load_times(path):
    with open(path) as fh:
        report = json.load(fh)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = (float(bench["cpu_time"]), bench["time_unit"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_perf.json")
    for name, _ in SERIES:
        parser.add_argument(f"--baseline-{name}",
                            help=f"committed BENCH_{name}.json")
        parser.add_argument(f"--fresh-{name}",
                            help=f"freshly generated BENCH_{name}.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when fresh/baseline exceeds this (default 2)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="minimum worker-pool speedup over the "
                             "thread-per-agent baseline (default 5)")
    parser.add_argument("--min-synthesis-speedup", type=float, default=5.0,
                        help="minimum optimized-synthesizer speedup over the "
                             "pre-optimization synthesizer (default 5)")
    parser.add_argument("--min-scale-speedup", type=float, default=5.0,
                        help="minimum relabel-path speedup over full "
                             "re-simulation (default 5)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)

    failures = []
    compared = 0
    print(f"{'benchmark':<24} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in GATED:
        if name not in baseline:
            print(f"{name:<24} {'(no baseline — skipped)':>34}")
            continue
        if name not in fresh:
            failures.append(f"{name}: missing from fresh report")
            continue
        base_t, base_u = baseline[name]
        fresh_t, fresh_u = fresh[name]
        if base_u != fresh_u:
            failures.append(f"{name}: unit mismatch {base_u} vs {fresh_u}")
            continue
        compared += 1
        ratio = fresh_t / base_t if base_t > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > args.max_ratio else ""
        print(f"{name:<24} {base_t:>10.1f}{base_u:>2} {fresh_t:>10.1f}{fresh_u:>2} "
              f"{ratio:>7.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {fresh_t:.1f}{fresh_u} vs baseline {base_t:.1f}{base_u} "
                f"({ratio:.2f}x > {args.max_ratio}x)")

    # Fail closed: if nothing was comparable (renamed benchmarks, stale or
    # truncated baseline, bench_perf skipped at configure time), a green
    # result would be meaningless.
    if compared == 0:
        failures.append("no gated benchmark was present in both reports")

    for name, checker in SERIES:
        baseline_path = getattr(args, f"baseline_{name}")
        fresh_path = getattr(args, f"fresh_{name}")
        if bool(baseline_path) != bool(fresh_path):
            failures.append(f"--baseline-{name} and --fresh-{name} must be "
                            f"passed together")
        elif baseline_path:
            checker(baseline_path, fresh_path, args, failures)

    if failures:
        print("\nPerf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nPerf gate passed ({compared} benchmarks compared).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
