#!/usr/bin/env python3
"""Perf regression gate for the P_opt hot-path benchmarks.

Compares a freshly produced google-benchmark JSON report (bench_perf →
BENCH_perf.json) against the committed baseline and fails if any gated
benchmark regressed by more than the allowed factor (default 2x, per the
ROADMAP "CI perf regression gate" item).

Only hot-path benchmarks are gated, and the threshold is deliberately
coarse (2x): the committed baseline and a CI runner are different machines,
so the gate is meant to catch algorithmic regressions (a hot path sliding
back toward the pre-packed implementation), not few-percent noise. Refresh
the committed baseline (cmake --build build --target bench_all) whenever a
PR intentionally changes these timings.

Usage:
  ci/check_bench.py --baseline BENCH_perf.json --fresh fresh/BENCH_perf.json \
      [--max-ratio 2.0]
"""

import argparse
import json
import sys

# Benchmarks whose regression fails the gate. Names must match the
# google-benchmark "name" field exactly.
GATED = [
    "BM_GraphMerge/8",
    "BM_GraphMerge/16",
    "BM_GraphMerge/32",
    "BM_ConeConstruction/8",
    "BM_ConeConstruction/16",
    "BM_ConeConstruction/32",
    "BM_ExtractView/8",
    "BM_ExtractView/16",
    "BM_ExtractView/32",
    "BM_CommonTest/8",
    "BM_CommonTest/16",
    "BM_CommonTest/32",
    "BM_FullRunPOpt/8",
    "BM_FullRunPOpt/16",
    "BM_FullRunPOpt/24",
    "BM_FullRunPOpt/32",
]


def load_times(path):
    with open(path) as fh:
        report = json.load(fh)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = (float(bench["cpu_time"]), bench["time_unit"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_perf.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when fresh/baseline exceeds this (default 2)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)

    failures = []
    compared = 0
    print(f"{'benchmark':<24} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in GATED:
        if name not in baseline:
            print(f"{name:<24} {'(no baseline — skipped)':>34}")
            continue
        if name not in fresh:
            failures.append(f"{name}: missing from fresh report")
            continue
        base_t, base_u = baseline[name]
        fresh_t, fresh_u = fresh[name]
        if base_u != fresh_u:
            failures.append(f"{name}: unit mismatch {base_u} vs {fresh_u}")
            continue
        compared += 1
        ratio = fresh_t / base_t if base_t > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > args.max_ratio else ""
        print(f"{name:<24} {base_t:>10.1f}{base_u:>2} {fresh_t:>10.1f}{fresh_u:>2} "
              f"{ratio:>7.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {fresh_t:.1f}{fresh_u} vs baseline {base_t:.1f}{base_u} "
                f"({ratio:.2f}x > {args.max_ratio}x)")

    # Fail closed: if nothing was comparable (renamed benchmarks, stale or
    # truncated baseline, bench_perf skipped at configure time), a green
    # result would be meaningless.
    if compared == 0:
        failures.append("no gated benchmark was present in both reports")

    if failures:
        print("\nPerf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nPerf gate passed ({compared} benchmarks compared).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
