#!/usr/bin/env python3
"""Perf regression gate for the P_opt hot-path, throughput and synthesis
benchmarks.

Compares a freshly produced google-benchmark JSON report (bench_perf →
BENCH_perf.json) against the committed baseline and fails if any gated
benchmark regressed by more than the allowed factor (default 2x, per the
ROADMAP "CI perf regression gate" item). When throughput reports are also
supplied (bench_throughput → BENCH_throughput.json), the gate additionally
fails if the headline aggregate decided-instances/sec fell below
baseline/max-ratio, if the worker pool lost its >=5x edge over the
sequential thread-per-agent cluster, or if fewer concurrent instances
completed than the baseline admitted. When synthesis reports are supplied
(bench_synthesis → BENCH_synthesis.json), it fails if the optimized
synthesizer's headline wall time regressed >max-ratio against the committed
baseline, if its same-machine speedup over the pre-optimization synthesizer
fell below the minimum (5x), or if any synthesis point's decisions diverged
from its reference. When general-omissions reports are supplied (bench_go →
BENCH_go.json), it fails if the headline canonical-orbit sweep regressed
>max-ratio in wall time, if any sweep lost spec coverage or spec
correctness, or if the Example-7.1 GO shortcut rows stopped holding. When
adversary reports are supplied (bench_adversary → BENCH_adversary.json), it
fails if any worst-case search row stops finding the analytic worst
decision round, if the Example-7.1 anchor or the adaptive-vs-static
comparison breaks, if any spec-oracle fuzz row reports a violation, or if
the headline search regressed >max-ratio in wall time. The throughput check
also gates worker scaling: the best multi-worker row must stay >= 0.5x the
workers:1 row (loose tolerance for single-core runners). When recovery
reports are supplied (bench_recovery → BENCH_recovery.json), it fails if
any streamed trace stopped verifying offline, if snapshotting or crash
injection changed a run record, if any tamper mutation was accepted, or if
replay-verification throughput fell below baseline/max-ratio.

Only hot-path benchmarks are gated, and the threshold is deliberately
coarse (2x): the committed baseline and a CI runner are different machines,
so the gate is meant to catch algorithmic regressions (a hot path sliding
back toward the pre-packed implementation), not few-percent noise. The
speedup check has no such caveat — it is a same-machine ratio. Refresh
the committed baselines (cmake --build build --target bench_all) whenever a
PR intentionally changes these numbers.

Usage:
  ci/check_bench.py --baseline BENCH_perf.json --fresh fresh/BENCH_perf.json \
      [--baseline-throughput BENCH_throughput.json] \
      [--fresh-throughput fresh/BENCH_throughput.json] \
      [--baseline-synthesis BENCH_synthesis.json] \
      [--fresh-synthesis fresh/BENCH_synthesis.json] \
      [--baseline-go BENCH_go.json] [--fresh-go fresh/BENCH_go.json] \
      [--baseline-recovery BENCH_recovery.json] \
      [--fresh-recovery fresh/BENCH_recovery.json] \
      [--max-ratio 2.0] [--min-speedup 5.0] [--min-synthesis-speedup 5.0]
"""

import argparse
import json
import sys

# Benchmarks whose regression fails the gate. Names must match the
# google-benchmark "name" field exactly.
GATED = [
    "BM_GraphMerge/8",
    "BM_GraphMerge/16",
    "BM_GraphMerge/32",
    "BM_ConeConstruction/8",
    "BM_ConeConstruction/16",
    "BM_ConeConstruction/32",
    "BM_ExtractView/8",
    "BM_ExtractView/16",
    "BM_ExtractView/32",
    "BM_CommonTest/8",
    "BM_CommonTest/16",
    "BM_CommonTest/32",
    "BM_FullRunPOpt/8",
    "BM_FullRunPOpt/16",
    "BM_FullRunPOpt/24",
    "BM_FullRunPOpt/32",
]


def load_times(path):
    with open(path) as fh:
        report = json.load(fh)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = (float(bench["cpu_time"]), bench["time_unit"])
    return times


def check_throughput(baseline_path, fresh_path, max_ratio, min_speedup,
                     failures):
    """Gates the headline decided-instances/sec of BENCH_throughput.json."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)

    base_dps = float(baseline["headline"]["decided_per_sec"])
    fresh_dps = float(fresh["headline"]["decided_per_sec"])
    ratio = base_dps / fresh_dps if fresh_dps > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{'throughput headline':<24} {base_dps:>10.0f}/s {fresh_dps:>10.0f}/s "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"throughput headline: {fresh_dps:.0f} decided/s vs baseline "
            f"{base_dps:.0f} ({ratio:.2f}x slower > {max_ratio}x)")

    # Same acceptance floor as bench_throughput's own exit check: at least
    # 1000 concurrent instances must complete (the fresh report's admitted
    # count is what matters; the baseline may have sized its sweep
    # differently).
    completed = int(fresh["headline"]["completed"])
    admitted = int(fresh["headline"]["instances"])
    if completed < 1000:
        failures.append(
            f"throughput headline: only {completed}/{admitted} concurrent "
            f"instances completed (minimum 1000)")

    speedup = float(fresh["speedup_vs_thread_per_agent"])
    print(f"{'pool vs thread/agent':<24} {'(min ' + str(min_speedup) + 'x)':>12} "
          f"{speedup:>10.2f}x")
    if speedup < min_speedup:
        failures.append(
            f"worker pool only {speedup:.2f}x the sequential thread-per-agent "
            f"cluster (minimum {min_speedup}x)")

    # Worker-scaling gate (same-machine ratio, like the speedup check): the
    # best multi-worker row must not fall below half the workers:1 row. The
    # loose 0.5 tolerance absorbs single-core CI runners, where extra workers
    # only add scheduling overhead (observed ratios 0.7-0.85 on one core) —
    # what the gate catches is a pool that became MUCH slower than running
    # single-threaded, i.e. a contention bug.
    scaling = fresh.get("worker_scaling", [])
    if scaling:
        single = [p for p in scaling if int(p["workers"]) == 1]
        multi = [p for p in scaling if int(p["workers"]) > 1]
        if not single or not multi:
            failures.append("worker_scaling must include a workers:1 row and "
                            "at least one multi-worker row")
        else:
            single_dps = float(single[0]["decided_per_sec"])
            best_multi = max(float(p["decided_per_sec"]) for p in multi)
            ratio = best_multi / single_dps if single_dps > 0 else 0.0
            print(f"{'worker scaling':<24} {single_dps:>10.0f}/s "
                  f"{best_multi:>10.0f}/s {ratio:>7.2f}x")
            if ratio < 0.5:
                failures.append(
                    f"multi-worker throughput {best_multi:.0f}/s fell below "
                    f"0.5x the single-worker row {single_dps:.0f}/s")
    else:
        failures.append("fresh throughput report has no worker_scaling rows")


def check_synthesis(baseline_path, fresh_path, max_ratio, min_speedup,
                    failures):
    """Gates the headline of BENCH_synthesis.json."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)

    base_s = float(baseline["headline"]["optimized_seconds"])
    fresh_s = float(fresh["headline"]["optimized_seconds"])
    ratio = fresh_s / base_s if base_s > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{'synthesis headline':<24} {base_s:>11.4f}s {fresh_s:>11.4f}s "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"synthesis headline: {fresh_s:.4f}s vs baseline {base_s:.4f}s "
            f"({ratio:.2f}x slower > {max_ratio}x)")

    # Same-machine ratio, immune to runner speed: the optimized synthesizer
    # must stay >= min_speedup over the options-off (pre-PR) synthesizer on
    # the n=4 full-enumeration config.
    speedup = fresh["headline"]["speedup"]
    speedup_cell = f"{float(speedup):.2f}x" if speedup is not None else "null"
    print(f"{'synthesis vs pre-PR':<24} {'(min ' + str(min_speedup) + 'x)':>12} "
          f"{speedup_cell:>11}")
    if speedup is None or float(speedup) < min_speedup:
        failures.append(
            f"optimized synthesizer only {speedup}x the pre-optimization "
            f"baseline (minimum {min_speedup}x)")

    for point in fresh.get("points", []):
        if not point.get("decisions_match", False):
            failures.append(
                f"synthesis point {point.get('label')}: decisions diverge "
                f"from the reference protocol")


def check_go(baseline_path, fresh_path, max_ratio, failures):
    """Gates BENCH_go.json: headline sweep wall time, spec coverage, and the
    Example-7.1 GO shortcut rows."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)

    base_s = float(baseline["headline"]["seconds"])
    fresh_s = float(fresh["headline"]["seconds"])
    ratio = fresh_s / base_s if base_s > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{'go headline sweep':<24} {base_s:>11.4f}s {fresh_s:>11.4f}s "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"go headline sweep: {fresh_s:.4f}s vs baseline {base_s:.4f}s "
            f"({ratio:.2f}x slower > {max_ratio}x)")

    for name in ("headline", "sweep_n5"):
        sweep = fresh.get(name, {})
        if not sweep.get("spec_ok", False):
            failures.append(f"go {name}: EBA spec violated on a GO orbit")
        if sweep.get("covered") != sweep.get("space"):
            failures.append(
                f"go {name}: orbit multiplicities cover "
                f"{sweep.get('covered')} of {sweep.get('space')} patterns")
    if not fresh.get("scale", {}).get("spec_ok", False):
        failures.append("go scale point: EBA spec violated on a sampled run")
    for name in ("example71_go", "example71_go_boundary"):
        if not fresh.get(name, {}).get("ok", False):
            failures.append(f"go {name}: expected decision rounds not met")


def check_adversary(baseline_path, fresh_path, max_ratio, failures):
    """Gates BENCH_adversary.json: worst-case search rows must keep finding
    the analytic worst decision rounds, the Example-7.1 anchor and the
    adaptive-vs-static comparison must hold, every fuzz row must stay
    violation-free, and the headline search must not regress >max-ratio in
    wall time against the committed baseline."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)

    base_s = float(baseline["headline"]["seconds"])
    fresh_s = float(fresh["headline"]["seconds"])
    ratio = fresh_s / base_s if base_s > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{'adversary headline':<24} {base_s:>11.4f}s {fresh_s:>11.4f}s "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"adversary headline search: {fresh_s:.4f}s vs baseline "
            f"{base_s:.4f}s ({ratio:.2f}x slower > {max_ratio}x)")

    for row in fresh.get("worst_case", []):
        if not row.get("ok", False):
            failures.append(
                f"adversary {row.get('label')}: found round "
                f"{row.get('found_round')} vs expected "
                f"{row.get('expected_round')}")
    if not fresh.get("example71", {}).get("ok", False):
        failures.append("adversary example71: decision rounds diverge from "
                        "the paper's analytic values")
    adaptive = fresh.get("adaptive", {})
    if not adaptive.get("ok", False):
        failures.append(
            f"adaptive strategies (worst round "
            f"{adaptive.get('adaptive_worst_round')}) lost to blind static "
            f"sampling (worst round {adaptive.get('static_worst_round')})")
    for row in fresh.get("fuzz", []):
        if not row.get("spec_ok", False):
            failures.append(
                f"adversary {row.get('label')}: {row.get('violations')} spec "
                f"violations in {row.get('runs')} fuzz runs")


def check_recovery(baseline_path, fresh_path, max_ratio, failures):
    """Gates BENCH_recovery.json: replay-verification throughput against the
    committed baseline, plus every correctness flag — traces verifying
    offline, snapshot/crash runs matching uninterrupted records, and the
    tamper sweep rejecting every mutation."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)

    base_tps = float(baseline["headline"]["traces_per_sec"])
    fresh_tps = float(fresh["headline"]["traces_per_sec"])
    ratio = base_tps / fresh_tps if fresh_tps > 0 else float("inf")
    flag = " <-- REGRESSION" if ratio > max_ratio else ""
    print(f"{'recovery replay':<24} {base_tps:>10.0f}/s {fresh_tps:>10.0f}/s "
          f"{ratio:>7.2f}x{flag}")
    if ratio > max_ratio:
        failures.append(
            f"recovery replay: {fresh_tps:.0f} verifications/s vs baseline "
            f"{base_tps:.0f} ({ratio:.2f}x slower > {max_ratio}x)")

    if not fresh.get("headline", {}).get("ok", False):
        failures.append("recovery headline: a streamed trace failed offline "
                        "verification")
    snapshot = fresh.get("snapshot", {})
    if not snapshot.get("ok", False):
        failures.append("recovery snapshot: every-round checkpoints changed "
                        "the run records")
    for row in fresh.get("crash_storms", []):
        if not row.get("ok", False):
            failures.append(
                f"recovery {row.get('label')}: records_equal="
                f"{row.get('records_equal')} traces_ok={row.get('traces_ok')} "
                f"crashes={row.get('crashes')}")
    tamper = fresh.get("tamper", {})
    if not tamper.get("ok", False):
        failures.append(
            f"recovery tamper sweep: {tamper.get('rejected')} of "
            f"{tamper.get('mutations')} mutations rejected")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_perf.json")
    parser.add_argument("--baseline-throughput",
                        help="committed BENCH_throughput.json")
    parser.add_argument("--fresh-throughput",
                        help="freshly generated BENCH_throughput.json")
    parser.add_argument("--baseline-synthesis",
                        help="committed BENCH_synthesis.json")
    parser.add_argument("--fresh-synthesis",
                        help="freshly generated BENCH_synthesis.json")
    parser.add_argument("--baseline-go", help="committed BENCH_go.json")
    parser.add_argument("--fresh-go", help="freshly generated BENCH_go.json")
    parser.add_argument("--baseline-adversary",
                        help="committed BENCH_adversary.json")
    parser.add_argument("--fresh-adversary",
                        help="freshly generated BENCH_adversary.json")
    parser.add_argument("--baseline-recovery",
                        help="committed BENCH_recovery.json")
    parser.add_argument("--fresh-recovery",
                        help="freshly generated BENCH_recovery.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when fresh/baseline exceeds this (default 2)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="minimum worker-pool speedup over the "
                             "thread-per-agent baseline (default 5)")
    parser.add_argument("--min-synthesis-speedup", type=float, default=5.0,
                        help="minimum optimized-synthesizer speedup over the "
                             "pre-optimization synthesizer (default 5)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)

    failures = []
    compared = 0
    print(f"{'benchmark':<24} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in GATED:
        if name not in baseline:
            print(f"{name:<24} {'(no baseline — skipped)':>34}")
            continue
        if name not in fresh:
            failures.append(f"{name}: missing from fresh report")
            continue
        base_t, base_u = baseline[name]
        fresh_t, fresh_u = fresh[name]
        if base_u != fresh_u:
            failures.append(f"{name}: unit mismatch {base_u} vs {fresh_u}")
            continue
        compared += 1
        ratio = fresh_t / base_t if base_t > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > args.max_ratio else ""
        print(f"{name:<24} {base_t:>10.1f}{base_u:>2} {fresh_t:>10.1f}{fresh_u:>2} "
              f"{ratio:>7.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {fresh_t:.1f}{fresh_u} vs baseline {base_t:.1f}{base_u} "
                f"({ratio:.2f}x > {args.max_ratio}x)")

    # Fail closed: if nothing was comparable (renamed benchmarks, stale or
    # truncated baseline, bench_perf skipped at configure time), a green
    # result would be meaningless.
    if compared == 0:
        failures.append("no gated benchmark was present in both reports")

    if bool(args.baseline_throughput) != bool(args.fresh_throughput):
        failures.append("--baseline-throughput and --fresh-throughput must "
                        "be passed together")
    elif args.baseline_throughput:
        check_throughput(args.baseline_throughput, args.fresh_throughput,
                         args.max_ratio, args.min_speedup, failures)

    if bool(args.baseline_synthesis) != bool(args.fresh_synthesis):
        failures.append("--baseline-synthesis and --fresh-synthesis must "
                        "be passed together")
    elif args.baseline_synthesis:
        check_synthesis(args.baseline_synthesis, args.fresh_synthesis,
                        args.max_ratio, args.min_synthesis_speedup, failures)

    if bool(args.baseline_go) != bool(args.fresh_go):
        failures.append("--baseline-go and --fresh-go must be passed together")
    elif args.baseline_go:
        check_go(args.baseline_go, args.fresh_go, args.max_ratio, failures)

    if bool(args.baseline_adversary) != bool(args.fresh_adversary):
        failures.append("--baseline-adversary and --fresh-adversary must be "
                        "passed together")
    elif args.baseline_adversary:
        check_adversary(args.baseline_adversary, args.fresh_adversary,
                        args.max_ratio, failures)

    if bool(args.baseline_recovery) != bool(args.fresh_recovery):
        failures.append("--baseline-recovery and --fresh-recovery must be "
                        "passed together")
    elif args.baseline_recovery:
        check_recovery(args.baseline_recovery, args.fresh_recovery,
                       args.max_ratio, failures)

    if failures:
        print("\nPerf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nPerf gate passed ({compared} benchmarks compared).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
