# Runs every benchmark binary and writes machine-readable BENCH_*.json files
# at the repository root. Invoked by the `bench_all` target:
#
#   cmake --build build --target bench_all
#
# Expects:
#   BENCH_BIN_DIR — directory containing the built bench binaries
#   REPO_ROOT     — repository root, where BENCH_*.json files are written

if(NOT DEFINED BENCH_BIN_DIR OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "run_benches.cmake needs -DBENCH_BIN_DIR=... -DREPO_ROOT=...")
endif()

# Escape a raw string into a JSON string body (no surrounding quotes).
# Control characters other than tab/newline (e.g. ANSI escapes) are stripped:
# JSON forbids them unescaped, and they carry no information in a report.
string(ASCII 1 2 3 4 5 6 7 8 11 12 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 _EBA_CTRL_CHARS)
function(json_escape input out_var)
  string(REPLACE "\\" "\\\\" escaped "${input}")
  string(REPLACE "\"" "\\\"" escaped "${escaped}")
  string(REPLACE "\r" "" escaped "${escaped}")
  string(REPLACE "\t" "\\t" escaped "${escaped}")
  string(REGEX REPLACE "[${_EBA_CTRL_CHARS}]" "" escaped "${escaped}")
  string(REPLACE "\n" "\\n" escaped "${escaped}")
  set(${out_var} "${escaped}" PARENT_SCOPE)
endfunction()

# --- bench_perf: google-benchmark, native JSON reporter --------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_perf)
  message(STATUS "Running bench_perf (google-benchmark, JSON reporter)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_perf
      --benchmark_out=${REPO_ROOT}/BENCH_perf.json
      --benchmark_out_format=json
      --benchmark_min_time=0.05
    RESULT_VARIABLE perf_rc
    OUTPUT_VARIABLE perf_out
    ERROR_VARIABLE perf_err)
  if(NOT perf_rc EQUAL 0)
    message(FATAL_ERROR "bench_perf failed (rc=${perf_rc}):\n${perf_out}\n${perf_err}")
  endif()
else()
  message(WARNING "bench_perf binary not found; BENCH_perf.json not refreshed")
endif()

# --- bench_throughput: emits its own JSON on stdout --------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_throughput)
  message(STATUS "Running bench_throughput (workload driver, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_throughput
    RESULT_VARIABLE tp_rc
    OUTPUT_VARIABLE tp_out
    ERROR_VARIABLE tp_err)
  if(NOT tp_rc EQUAL 0)
    message(FATAL_ERROR "bench_throughput failed (rc=${tp_rc}):\n${tp_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_throughput.json "${tp_out}")
else()
  message(WARNING "bench_throughput binary not found; BENCH_throughput.json not refreshed")
endif()

# --- bench_synthesis: emits its own JSON on stdout ---------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_synthesis)
  message(STATUS "Running bench_synthesis (KBP synthesizer, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_synthesis
    RESULT_VARIABLE syn_rc
    OUTPUT_VARIABLE syn_out
    ERROR_VARIABLE syn_err)
  if(NOT syn_rc EQUAL 0)
    message(FATAL_ERROR "bench_synthesis failed (rc=${syn_rc}):\n${syn_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_synthesis.json "${syn_out}")
else()
  message(WARNING "bench_synthesis binary not found; BENCH_synthesis.json not refreshed")
endif()

# --- bench_go: emits its own JSON on stdout ----------------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_go)
  message(STATUS "Running bench_go (general-omissions sweeps, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_go
    RESULT_VARIABLE go_rc
    OUTPUT_VARIABLE go_out
    ERROR_VARIABLE go_err)
  if(NOT go_rc EQUAL 0)
    message(FATAL_ERROR "bench_go failed (rc=${go_rc}):\n${go_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_go.json "${go_out}")
else()
  message(WARNING "bench_go binary not found; BENCH_go.json not refreshed")
endif()

# --- bench_scale: emits its own JSON on stdout -------------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_scale)
  message(STATUS "Running bench_scale (orbit-level run reuse, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_scale
    RESULT_VARIABLE scale_rc
    OUTPUT_VARIABLE scale_out
    ERROR_VARIABLE scale_err)
  if(NOT scale_rc EQUAL 0)
    message(FATAL_ERROR "bench_scale failed (rc=${scale_rc}):\n${scale_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_scale.json "${scale_out}")
else()
  message(WARNING "bench_scale binary not found; BENCH_scale.json not refreshed")
endif()

# --- bench_adversary: emits its own JSON on stdout ---------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_adversary)
  message(STATUS "Running bench_adversary (worst-case search + adaptive + fuzz, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_adversary
    RESULT_VARIABLE adv_rc
    OUTPUT_VARIABLE adv_out
    ERROR_VARIABLE adv_err)
  if(NOT adv_rc EQUAL 0)
    message(FATAL_ERROR "bench_adversary failed (rc=${adv_rc}):\n${adv_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_adversary.json "${adv_out}")
else()
  message(WARNING "bench_adversary binary not found; BENCH_adversary.json not refreshed")
endif()

# --- bench_recovery: emits its own JSON on stdout ----------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_recovery)
  message(STATUS "Running bench_recovery (trace replay + crash storms, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_recovery
    RESULT_VARIABLE rec_rc
    OUTPUT_VARIABLE rec_out
    ERROR_VARIABLE rec_err)
  if(NOT rec_rc EQUAL 0)
    message(FATAL_ERROR "bench_recovery failed (rc=${rec_rc}):\n${rec_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_recovery.json "${rec_out}")
else()
  message(WARNING "bench_recovery binary not found; BENCH_recovery.json not refreshed")
endif()

# --- bench_durability: emits its own JSON on stdout --------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_durability)
  message(STATUS "Running bench_durability (journal + delta checkpoints + torn writes, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_durability
    RESULT_VARIABLE dur_rc
    OUTPUT_VARIABLE dur_out
    ERROR_VARIABLE dur_err)
  if(NOT dur_rc EQUAL 0)
    message(FATAL_ERROR "bench_durability failed (rc=${dur_rc}):\n${dur_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_durability.json "${dur_out}")
else()
  message(WARNING "bench_durability binary not found; BENCH_durability.json not refreshed")
endif()

# --- bench_zoo: emits its own JSON on stdout ---------------------------------
if(EXISTS ${BENCH_BIN_DIR}/bench_zoo)
  message(STATUS "Running bench_zoo (protocol comparison matrix, native JSON)")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/bench_zoo
    RESULT_VARIABLE zoo_rc
    OUTPUT_VARIABLE zoo_out
    ERROR_VARIABLE zoo_err)
  if(NOT zoo_rc EQUAL 0)
    message(FATAL_ERROR "bench_zoo failed (rc=${zoo_rc}):\n${zoo_err}")
  endif()
  file(WRITE ${REPO_ROOT}/BENCH_zoo.json "${zoo_out}")
else()
  message(WARNING "bench_zoo binary not found; BENCH_zoo.json not refreshed")
endif()

# --- report benches: capture stdout into {name, exit_code, seconds, report} -
set(report_benches
  bench_ablation
  bench_domination
  bench_example71
  bench_failure_sweep
  bench_prop81_bits
  bench_prop82_rounds
  bench_termination)

foreach(bench ${report_benches})
  if(NOT EXISTS ${BENCH_BIN_DIR}/${bench})
    message(WARNING "${bench} binary not found; skipping")
    continue()
  endif()
  message(STATUS "Running ${bench}")
  string(TIMESTAMP start_s "%s")
  execute_process(
    COMMAND ${BENCH_BIN_DIR}/${bench}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(TIMESTAMP end_s "%s")
  math(EXPR elapsed "${end_s} - ${start_s}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${bench} failed (rc=${rc}):\n${out}\n${err}")
  endif()
  json_escape("${out}" out_json)
  string(REGEX REPLACE "^bench_" "" short "${bench}")
  file(WRITE ${REPO_ROOT}/BENCH_${short}.json
    "{\n"
    "  \"name\": \"${bench}\",\n"
    "  \"exit_code\": ${rc},\n"
    "  \"seconds\": ${elapsed},\n"
    "  \"report\": \"${out_json}\"\n"
    "}\n")
endforeach()

message(STATUS "All benches complete; BENCH_*.json written to ${REPO_ROOT}")
