#!/usr/bin/env sh
# Tier-1 verify: configure, build, test, plus a seconds-budget spec-oracle
# fuzz smoke. Run from the repo root.
set -eu
cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
./bench_adversary --fuzz-smoke
./bench_zoo --smoke > /dev/null
./replay_verify --selftest
