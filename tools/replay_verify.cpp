// replay_verify — standalone offline verifier for EBTR trace containers.
//
//   replay_verify <trace.ebtr>...   verify each file, print one summary line
//                                   per file; exit nonzero if any is rejected
//                                   or fails verification
//   replay_verify --selftest        adversarial self-test: round-trips traces
//                                   for several protocols, then asserts that
//                                   every truncation, every single-bit flip,
//                                   a version bump and a magic corruption are
//                                   rejected with a typed diagnostic
//
// The verifier re-parses the container, re-derives the decision certificate
// from the replayed rounds, and re-checks the EBA spec (core/spec.hpp) —
// the paper's §5 spec-as-oracle run offline against a durable artifact.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "audit/trace_file.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/generators.hpp"
#include "sim/adaptive.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace eba;

int verify_files(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cout << path << ": cannot open\n";
      failures += 1;
      continue;
    }
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    const ReplayReport report = replay_verify(bytes);
    std::cout << path << ": " << report.summary() << "\n";
    if (!report.ok) failures += 1;
  }
  return failures == 0 ? 0 : 1;
}

#define CHECK(cond, what)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "SELFTEST FAIL at " << __FILE__ << ":" << __LINE__    \
                << ": " << (what) << "\n";                               \
      return false;                                                      \
    }                                                                    \
  } while (0)

/// Every way a stored trace can rot must come back as a rejection or a
/// failed verification — never an accept, never UB.
bool adversarial_pass(const Bytes& trace, const std::string& label) {
  // Baseline: the untampered container verifies.
  {
    const ReplayReport report = replay_verify(trace);
    CHECK(report.ok, label + ": pristine trace rejected");
  }
  // Truncation at every byte.
  for (std::size_t cut = 0; cut < trace.size(); ++cut) {
    Bytes t(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(cut));
    const ReplayReport report = replay_verify(t);
    CHECK(!report.parsed && !report.ok,
          label + ": truncation at byte " + std::to_string(cut) + " accepted");
  }
  // Single-bit flips at every byte (one bit per byte keeps the pass fast;
  // the CRC catches any single-bit error, so bit position is immaterial).
  for (std::size_t at = 0; at < trace.size(); ++at) {
    Bytes t = trace;
    t[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    const ReplayReport report = replay_verify(t);
    CHECK(!report.ok,
          label + ": bit flip at byte " + std::to_string(at) + " accepted");
  }
  // Over-length: trailing garbage after the certificate terminator.
  {
    Bytes t = trace;
    t.push_back(0xAB);
    const ReplayReport report = replay_verify(t);
    CHECK(!report.ok, label + ": trailing garbage accepted");
  }
  // Version skew and magic corruption.
  {
    Bytes t = trace;
    t[4] ^= 0xFF;
    CHECK(!replay_verify(t).ok, label + ": version skew accepted");
    Bytes m = trace;
    m[0] = 'X';
    CHECK(!replay_verify(m).ok, label + ": magic corruption accepted");
  }
  return true;
}

template <ExchangeProtocol X, class P>
bool roundtrip_protocol(const X& x, const P& act, const std::string& label,
                        std::uint64_t seed, FailureModel model) {
  const int n = x.n();
  const int t = 2;
  Rng rng(seed);
  const FailurePattern alpha =
      model == FailureModel::sending
          ? sample_adversary(n, t, /*rounds=*/t + 2, /*drop_prob=*/0.3, rng)
          : sample_go_adversary(n, t, /*rounds=*/t + 2, /*drop_prob=*/0.3,
                                /*recv_drop_prob=*/0.2, rng);
  std::vector<Value> inits;
  for (AgentId i = 0; i < n; ++i)
    inits.push_back(i % 2 == 0 ? Value::one : Value::zero);

  const Run<X> run = simulate(x, act, alpha, inits, t);
  const Bytes trace = write_trace(run.record, /*instance_id=*/seed);
  const TraceFile parsed = read_trace(trace);
  CHECK(parsed.record == run.record, label + ": record round-trip mismatch");
  return adversarial_pass(trace, label);
}

int selftest() {
  bool ok = true;
  ok = ok && roundtrip_protocol(MinExchange(6), PMin(6, 2), "p_min", 11,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(BasicExchange(6), PBasic(6, 2), "p_basic", 12,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(FipExchange(5), POpt(5, 2), "p_opt", 13,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(FipExchange(5), POptGo(5, 2), "p_opt_go", 14,
                                FailureModel::general);

  // An adaptive run: the trace must carry the REALIZED pattern's evidence.
  if (ok) {
    const int n = 5, t = 2;
    auto strat = make_random_budget_strategy(n, t, FailureModel::general, 99);
    std::vector<Value> inits(n, Value::one);
    FipExchange x(n);
    POptGo act(n, t);
    FailurePattern realized = FailurePattern::failure_free(n);
    const Run<FipExchange> run =
        simulate_adaptive(x, act, *strat, inits, t, {}, &realized);
    const Bytes trace = write_trace(run.record, 77);
    ok = adversarial_pass(trace, "adaptive_p_opt_go");
  }

  if (!ok) {
    std::cerr << "replay_verify selftest: FAILED\n";
    return 1;
  }
  std::cout << "replay_verify selftest: all adversarial mutations rejected\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) return selftest();
  if (argc < 2) {
    std::cerr << "usage: replay_verify <trace.ebtr>... | --selftest\n";
    return 2;
  }
  std::vector<std::string> paths(argv + 1, argv + argc);
  return verify_files(paths);
}
