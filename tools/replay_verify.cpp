// replay_verify — standalone offline verifier for EBTR trace containers.
//
//   replay_verify [--key K] <trace.ebtr>...
//                                   verify each file, print one summary line
//                                   per file. K (decimal or 0x-hex) is the
//                                   keyed-digest key for version-2 traces;
//                                   omitted = 0 = unkeyed.
//   replay_verify --selftest        adversarial self-test: round-trips traces
//                                   for several protocols (keyed and unkeyed),
//                                   then asserts that every truncation, every
//                                   single-bit flip, a version bump, a magic
//                                   corruption, a wrong key and an empty input
//                                   are rejected with a typed diagnostic
//
// Exit codes (scriptable; the worst category across all files wins, with
// precedence missing/unreadable > parse failure > verification failure):
//   0  every file parsed and verified
//   1  some file parsed but failed verification or the EBA spec
//   2  usage error (bad flag, malformed --key, no files)
//   3  some file was missing or unreadable
//   4  some file did not parse (corrupt, truncated, wrong key, or empty)
//
// The verifier re-parses the container, re-derives the decision certificate
// from the replayed rounds, and re-checks the EBA spec (core/spec.hpp) —
// the paper's §5 spec-as-oracle run offline against a durable artifact.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "action/p_basic.hpp"
#include "action/p_min.hpp"
#include "action/p_opt.hpp"
#include "action/p_opt_go.hpp"
#include "audit/trace_file.hpp"
#include "exchange/basic.hpp"
#include "exchange/fip.hpp"
#include "exchange/min.hpp"
#include "failure/generators.hpp"
#include "sim/adaptive.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace eba;

// Exit codes; kMissing > kParse > kVerify is the precedence when several
// files fail in different ways.
constexpr int kOk = 0;
constexpr int kVerify = 1;
constexpr int kUsage = 2;
constexpr int kMissing = 3;
constexpr int kParse = 4;

int worse(int a, int b) {
  // Severity order: 3 (missing) > 4 (parse) > 1 (verify) > 0.
  const auto rank = [](int code) {
    switch (code) {
      case kMissing: return 3;
      case kParse: return 2;
      case kVerify: return 1;
      default: return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

int verify_files(const std::vector<std::string>& paths, std::uint64_t key) {
  int exit_code = kOk;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cout << path << ": cannot open\n";
      exit_code = worse(exit_code, kMissing);
      continue;
    }
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      std::cout << path << ": read error\n";
      exit_code = worse(exit_code, kMissing);
      continue;
    }
    if (bytes.empty()) {
      std::cout << path << ": empty file — not a trace container\n";
      exit_code = worse(exit_code, kParse);
      continue;
    }
    const ReplayReport report = replay_verify(bytes, key);
    std::cout << path << ": " << report.summary() << "\n";
    if (!report.parsed)
      exit_code = worse(exit_code, kParse);
    else if (!report.ok)
      exit_code = worse(exit_code, kVerify);
  }
  return exit_code;
}

/// Parses a --key operand: decimal or 0x-prefixed hex, full-string match.
bool parse_key(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const bool hex =
      text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X');
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      std::strtoull(text.c_str() + (hex ? 2 : 0), &end, hex ? 16 : 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  if (text.find('-') != std::string::npos) return false;  // no wrap-around
  out = v;
  return true;
}

#define CHECK(cond, what)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "SELFTEST FAIL at " << __FILE__ << ":" << __LINE__    \
                << ": " << (what) << "\n";                               \
      return false;                                                      \
    }                                                                    \
  } while (0)

/// Every way a stored trace can rot must come back as a rejection or a
/// failed verification — never an accept, never UB.
bool adversarial_pass(const Bytes& trace, const std::string& label) {
  // Baseline: the untampered container verifies.
  {
    const ReplayReport report = replay_verify(trace);
    CHECK(report.ok, label + ": pristine trace rejected");
  }
  // Truncation at every byte.
  for (std::size_t cut = 0; cut < trace.size(); ++cut) {
    Bytes t(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(cut));
    const ReplayReport report = replay_verify(t);
    CHECK(!report.parsed && !report.ok,
          label + ": truncation at byte " + std::to_string(cut) + " accepted");
  }
  // Single-bit flips at every byte (one bit per byte keeps the pass fast;
  // the CRC catches any single-bit error, so bit position is immaterial).
  for (std::size_t at = 0; at < trace.size(); ++at) {
    Bytes t = trace;
    t[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    const ReplayReport report = replay_verify(t);
    CHECK(!report.ok,
          label + ": bit flip at byte " + std::to_string(at) + " accepted");
  }
  // Over-length: trailing garbage after the certificate terminator.
  {
    Bytes t = trace;
    t.push_back(0xAB);
    const ReplayReport report = replay_verify(t);
    CHECK(!report.ok, label + ": trailing garbage accepted");
  }
  // Version skew and magic corruption.
  {
    Bytes t = trace;
    t[4] ^= 0xFF;
    CHECK(!replay_verify(t).ok, label + ": version skew accepted");
    Bytes m = trace;
    m[0] = 'X';
    CHECK(!replay_verify(m).ok, label + ": magic corruption accepted");
  }
  return true;
}

template <ExchangeProtocol X, class P>
bool roundtrip_protocol(const X& x, const P& act, const std::string& label,
                        std::uint64_t seed, FailureModel model) {
  const int n = x.n();
  const int t = 2;
  Rng rng(seed);
  const FailurePattern alpha =
      model == FailureModel::sending
          ? sample_adversary(n, t, /*rounds=*/t + 2, /*drop_prob=*/0.3, rng)
          : sample_go_adversary(n, t, /*rounds=*/t + 2, /*drop_prob=*/0.3,
                                /*recv_drop_prob=*/0.2, rng);
  std::vector<Value> inits;
  for (AgentId i = 0; i < n; ++i)
    inits.push_back(i % 2 == 0 ? Value::one : Value::zero);

  const Run<X> run = simulate(x, act, alpha, inits, t);
  const Bytes trace = write_trace(run.record, /*instance_id=*/seed);
  const TraceFile parsed = read_trace(trace);
  CHECK(parsed.record == run.record, label + ": record round-trip mismatch");
  return adversarial_pass(trace, label);
}

int selftest() {
  bool ok = true;
  ok = ok && roundtrip_protocol(MinExchange(6), PMin(6, 2), "p_min", 11,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(BasicExchange(6), PBasic(6, 2), "p_basic", 12,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(FipExchange(5), POpt(5, 2), "p_opt", 13,
                                FailureModel::sending);
  ok = ok && roundtrip_protocol(FipExchange(5), POptGo(5, 2), "p_opt_go", 14,
                                FailureModel::general);

  // An adaptive run: the trace must carry the REALIZED pattern's evidence.
  if (ok) {
    const int n = 5, t = 2;
    auto strat = make_random_budget_strategy(n, t, FailureModel::general, 99);
    std::vector<Value> inits(n, Value::one);
    FipExchange x(n);
    POptGo act(n, t);
    FailurePattern realized = FailurePattern::failure_free(n);
    const Run<FipExchange> run =
        simulate_adaptive(x, act, *strat, inits, t, {}, &realized);
    const Bytes trace = write_trace(run.record, 77);
    ok = adversarial_pass(trace, "adaptive_p_opt_go");
  }

  // Keyed containers: the right key verifies, every wrong key (including
  // "no key") is a typed rejection, never an accept.
  if (ok) {
    const int n = 6, t = 2;
    const MinExchange x(n);
    const PMin act(n, t);
    Rng rng(21);
    const FailurePattern alpha = sample_adversary(n, t, t + 2, 0.3, rng);
    std::vector<Value> inits;
    for (AgentId i = 0; i < n; ++i)
      inits.push_back(i % 2 == 0 ? Value::one : Value::zero);
    const Run<MinExchange> run = simulate(x, act, alpha, inits, t);
    const std::uint64_t key = 0xFEEDFACECAFEull;
    const Bytes keyed = write_trace(run.record, 21, key);
    const auto keyed_ok = [&]() -> bool {
      CHECK(replay_verify(keyed, key).ok, "keyed: pristine trace rejected");
      const ReplayReport wrong = replay_verify(keyed, key ^ 1);
      CHECK(!wrong.parsed && !wrong.ok, "keyed: wrong key accepted");
      const ReplayReport unkeyed = replay_verify(keyed);
      CHECK(!unkeyed.parsed, "keyed: keyless read accepted");
      const ReplayReport v1_as_keyed = replay_verify(write_trace(run.record, 21), key);
      CHECK(!v1_as_keyed.parsed, "keyed: unkeyed container passed a keyed read");
      // The keyed container gets the same adversarial battery, under its key.
      for (std::size_t at = 0; at < keyed.size(); ++at) {
        Bytes m = keyed;
        m[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
        CHECK(!replay_verify(m, key).ok,
              "keyed: bit flip at byte " + std::to_string(at) + " accepted");
      }
      return true;
    };
    ok = keyed_ok();
  }

  // Degenerate inputs: empty bytes must be a clean typed rejection.
  if (ok) {
    const ReplayReport empty = replay_verify(Bytes{});
    ok = !empty.parsed && !empty.ok;
    if (!ok) std::cerr << "SELFTEST FAIL: empty input accepted\n";
  }

  if (!ok) {
    std::cerr << "replay_verify selftest: FAILED\n";
    return 1;
  }
  std::cout << "replay_verify selftest: all adversarial mutations rejected\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) return selftest();

  const auto usage = []() {
    std::cerr
        << "usage: replay_verify [--key <decimal|0xhex>] <trace.ebtr>...\n"
        << "       replay_verify --selftest\n";
    return kUsage;
  };

  std::uint64_t key = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--key") {
      if (i + 1 >= argc) {
        std::cerr << "replay_verify: --key needs a value\n";
        return usage();
      }
      i += 1;
      if (!parse_key(argv[i], key)) {
        std::cerr << "replay_verify: bad --key value '" << argv[i]
                  << "' (want decimal or 0x-hex u64)\n";
        return usage();
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "replay_verify: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  return verify_files(paths, key);
}
